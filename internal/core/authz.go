package core

import (
	"fmt"

	"mcs/internal/sqldb"
)

// The MCS authorization model, per section 5 of the paper:
//
//   - Permissions may be granted on the service itself (e.g. the right to
//     add logical files), on individual files, on collections and on views.
//   - Permissions granted on a collection apply to every file in it and in
//     its sub-collections: "the effective set of permissions on a logical
//     file is the union of the permissions on that file and the permissions
//     on a logical collection to which the file belongs, and so on up the
//     hierarchy of collections."
//   - Views do not affect authorization.
//   - The creator of an object implicitly holds every permission on it.

// Grant gives principal a permission on an object. objectName may be "" with
// objType == ObjectService for service-level rights. Granting requires write
// permission on the object (or service write for service-level grants).
func (c *Catalog) Grant(dn string, objType ObjectType, objectName, principal string, perm Permission) error {
	if !perm.Valid() {
		return fmt.Errorf("%w: permission %q", ErrInvalidInput, perm)
	}
	var id int64
	if objType != ObjectService {
		var err error
		id, err = c.resolveObject(dn, objType, objectName)
		if err != nil {
			return err
		}
	}
	if err := c.requireObject(dn, objType, id, PermWrite); err != nil {
		return err
	}
	dup, err := c.db.Query(
		"SELECT id FROM acl WHERE object_type = ? AND object_id = ? AND principal = ? AND permission = ?",
		sqldb.Text(string(objType)), sqldb.Int(id), sqldb.Text(principal), sqldb.Text(string(perm)))
	if err != nil {
		return err
	}
	if len(dup.Data) > 0 {
		return nil // idempotent
	}
	_, err = c.db.Exec(
		"INSERT INTO acl (object_type, object_id, principal, permission) VALUES (?, ?, ?, ?)",
		sqldb.Text(string(objType)), sqldb.Int(id), sqldb.Text(principal), sqldb.Text(string(perm)))
	return err
}

// Revoke removes a granted permission.
func (c *Catalog) Revoke(dn string, objType ObjectType, objectName, principal string, perm Permission) error {
	var id int64
	if objType != ObjectService {
		var err error
		id, err = c.resolveObject(dn, objType, objectName)
		if err != nil {
			return err
		}
	}
	if err := c.requireObject(dn, objType, id, PermWrite); err != nil {
		return err
	}
	_, err := c.db.Exec(
		"DELETE FROM acl WHERE object_type = ? AND object_id = ? AND principal = ? AND permission = ?",
		sqldb.Text(string(objType)), sqldb.Int(id), sqldb.Text(principal), sqldb.Text(string(perm)))
	return err
}

// Permissions lists the explicit grants on one object.
func (c *Catalog) Permissions(dn string, objType ObjectType, objectName string) (map[string][]Permission, error) {
	var id int64
	if objType != ObjectService {
		var err error
		id, err = c.resolveObject(dn, objType, objectName)
		if err != nil {
			return nil, err
		}
	}
	if err := c.requireObject(dn, objType, id, PermRead); err != nil {
		return nil, err
	}
	rows, err := c.db.Query(
		"SELECT principal, permission FROM acl WHERE object_type = ? AND object_id = ?",
		sqldb.Text(string(objType)), sqldb.Int(id))
	if err != nil {
		return nil, err
	}
	out := make(map[string][]Permission)
	for _, r := range rows.Data {
		out[r[0].S] = append(out[r[0].S], Permission(r[1].S))
	}
	return out, nil
}

// hasDirectGrantQ checks the ACL table for one (object, principal, perm) row.
func (c *Catalog) hasDirectGrantQ(q querier, objType ObjectType, id int64, dn string, perm Permission) (bool, error) {
	rows, err := q.Query(
		"SELECT id FROM acl WHERE object_type = ? AND object_id = ? AND principal = ? AND permission = ? LIMIT 1",
		sqldb.Text(string(objType)), sqldb.Int(id), sqldb.Text(dn), sqldb.Text(string(perm)))
	if err != nil {
		return false, err
	}
	return len(rows.Data) > 0, nil
}

// creatorOfQ returns the creator DN of an object.
func (c *Catalog) creatorOfQ(q querier, objType ObjectType, id int64) (string, error) {
	var table string
	switch objType {
	case ObjectFile:
		table = "logical_file"
	case ObjectCollection:
		table = "logical_collection"
	case ObjectView:
		table = "logical_view"
	default:
		return "", nil
	}
	rows, err := q.Query("SELECT creator FROM "+table+" WHERE id = ?", sqldb.Int(id))
	if err != nil || len(rows.Data) == 0 {
		return "", err
	}
	return rows.Data[0][0].S, nil
}

// allowed computes the effective permission check for dn on an object.
func (c *Catalog) allowed(dn string, objType ObjectType, id int64, perm Permission) (bool, error) {
	return c.allowedQ(c.db, dn, objType, id, perm)
}

// allowedQ is allowed reading through q (the open transaction during batch
// application, the database otherwise). Database-path decisions are
// memoized per commit epoch: a grant, revoke or ownership change commits a
// write, bumps the epoch and thereby drops every cached decision.
func (c *Catalog) allowedQ(q querier, dn string, objType ObjectType, id int64, perm Permission) (bool, error) {
	if !c.authz {
		return true, nil
	}
	if dn == c.opts.Owner && c.opts.Owner != "" {
		return true, nil
	}
	epoch, cacheable := c.cacheEpoch(q)
	key := authzCacheKey{dn: dn, typ: objType, id: id, perm: perm}
	if cacheable {
		if ok, hit := c.authzCache.get(epoch, key); hit {
			return ok, nil
		}
	}
	ok, err := c.allowedUncachedQ(q, dn, objType, id, perm)
	if err == nil && cacheable {
		c.authzCache.put(epoch, key, ok)
	}
	return ok, err
}

// allowedUncachedQ evaluates the effective-permission rules against q.
func (c *Catalog) allowedUncachedQ(q querier, dn string, objType ObjectType, id int64, perm Permission) (bool, error) {
	// Service-level grants apply everywhere (the owner bootstrap rows).
	if ok, err := c.hasDirectGrantQ(q, ObjectService, 0, dn, perm); err != nil || ok {
		return ok, err
	}
	if objType == ObjectService {
		return false, nil
	}
	if creator, err := c.creatorOfQ(q, objType, id); err != nil {
		return false, err
	} else if creator == dn {
		return true, nil
	}
	if ok, err := c.hasDirectGrantQ(q, objType, id, dn, perm); err != nil || ok {
		return ok, err
	}
	// Union with the collection hierarchy for files and sub-collections.
	var startCollection int64
	switch objType {
	case ObjectFile:
		rows, err := q.Query("SELECT collection_id FROM logical_file WHERE id = ?", sqldb.Int(id))
		if err != nil {
			return false, err
		}
		if len(rows.Data) > 0 && !rows.Data[0][0].IsNull() {
			startCollection = rows.Data[0][0].Int()
		}
	case ObjectCollection:
		rows, err := q.Query("SELECT parent_id FROM logical_collection WHERE id = ?", sqldb.Int(id))
		if err != nil {
			return false, err
		}
		if len(rows.Data) > 0 && !rows.Data[0][0].IsNull() {
			startCollection = rows.Data[0][0].Int()
		}
	}
	if startCollection == 0 {
		return false, nil
	}
	chain, err := c.collectionChainQ(q, startCollection)
	if err != nil {
		return false, err
	}
	// One IN-list statement per check across the whole ancestor chain,
	// instead of the former two statements per hierarchy level.
	ids := make([]sqldb.Value, len(chain))
	for i, cid := range chain {
		ids[i] = sqldb.Int(cid)
	}
	crows, err := q.Query(
		"SELECT creator FROM logical_collection WHERE id IN ("+placeholders(len(ids))+")", ids...)
	if err != nil {
		return false, err
	}
	for _, r := range crows.Data {
		if r[0].S == dn {
			return true, nil
		}
	}
	args := append([]sqldb.Value{
		sqldb.Text(string(ObjectCollection)), sqldb.Text(dn), sqldb.Text(string(perm)),
	}, ids...)
	grows, err := q.Query(
		"SELECT id FROM acl WHERE object_type = ? AND principal = ? AND permission = ? AND object_id IN ("+
			placeholders(len(ids))+") LIMIT 1", args...)
	if err != nil {
		return false, err
	}
	return len(grows.Data) > 0, nil
}

// requireService enforces a service-level permission.
func (c *Catalog) requireService(dn string, perm Permission) error {
	return c.requireServiceQ(c.db, dn, perm)
}

// requireServiceQ is requireService reading through q.
func (c *Catalog) requireServiceQ(q querier, dn string, perm Permission) error {
	ok, err := c.allowedQ(q, dn, ObjectService, 0, perm)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %s needs service %s", ErrDenied, dn, perm)
	}
	return nil
}

// requireObject enforces a permission on a specific object.
func (c *Catalog) requireObject(dn string, objType ObjectType, id int64, perm Permission) error {
	return c.requireObjectQ(c.db, dn, objType, id, perm)
}

// requireObjectQ is requireObject reading through q.
func (c *Catalog) requireObjectQ(q querier, dn string, objType ObjectType, id int64, perm Permission) error {
	ok, err := c.allowedQ(q, dn, objType, id, perm)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %s needs %s on %s/%d", ErrDenied, dn, perm, objType, id)
	}
	return nil
}

// requireFile enforces a permission on an already-loaded file.
func (c *Catalog) requireFile(dn string, f *File, perm Permission) error {
	return c.requireObject(dn, ObjectFile, f.ID, perm)
}

// requireFileQ is requireFile reading through q.
func (c *Catalog) requireFileQ(q querier, dn string, f *File, perm Permission) error {
	return c.requireObjectQ(q, dn, ObjectFile, f.ID, perm)
}
