package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// Property-based tests over catalog invariants.

// TestQuickUniqueAttrQueryFindsExactlyOne: for any set of files each tagged
// with a unique integer attribute, querying that value returns exactly that
// file.
func TestQuickUniqueAttrQueryFindsExactlyOne(t *testing.T) {
	c := openCatalog(t)
	if _, err := c.DefineAttribute(alice, "uid", AttrInt, ""); err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		rng := rand.New(rand.NewSource(seed))
		base := rng.Int63n(1 << 40)
		names := make([]string, n)
		for i := 0; i < n; i++ {
			names[i] = fmt.Sprintf("q-%d-%d", seed, i)
			if _, err := c.CreateFile(alice, FileSpec{
				Name:       names[i],
				Attributes: []Attribute{{Name: "uid", Value: Int(base + int64(i))}},
			}); err != nil {
				return false
			}
		}
		defer func() {
			for _, name := range names {
				c.DeleteFile(alice, name, 0) //nolint:errcheck
			}
		}()
		for i := 0; i < n; i++ {
			got, err := c.RunQuery(alice, Query{Predicates: []Predicate{
				{Attribute: "uid", Op: OpEq, Value: Int(base + int64(i))},
			}})
			if err != nil || len(got) != 1 || got[0] != names[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRangeQueryMatchesFilter: a range predicate returns exactly the
// files whose attribute satisfies it.
func TestQuickRangeQueryMatchesFilter(t *testing.T) {
	c := openCatalog(t)
	if _, err := c.DefineAttribute(alice, "val", AttrFloat, ""); err != nil {
		t.Fatal(err)
	}
	vals := []float64{-3.5, -1, 0, 0.5, 2, 2, 7.25, 100}
	for i, v := range vals {
		if _, err := c.CreateFile(alice, FileSpec{
			Name:       fmt.Sprintf("r-%02d", i),
			Attributes: []Attribute{{Name: "val", Value: Float(v)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	f := func(threshold float64) bool {
		if threshold != threshold { // NaN
			return true
		}
		got, err := c.RunQuery(alice, Query{Predicates: []Predicate{
			{Attribute: "val", Op: OpGt, Value: Float(threshold)},
		}})
		if err != nil {
			return false
		}
		want := 0
		for _, v := range vals {
			if v > threshold {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSetAttributeLastWriteWins: any sequence of Set calls on the same
// attribute leaves exactly the final value.
func TestQuickSetAttributeLastWriteWins(t *testing.T) {
	c := openCatalog(t)
	c.DefineAttribute(alice, "s", AttrString, "") //nolint:errcheck
	c.CreateFile(alice, FileSpec{Name: "f"})      //nolint:errcheck
	f := func(writes []string) bool {
		if len(writes) == 0 {
			return true
		}
		for _, w := range writes {
			if err := c.SetAttribute(alice, ObjectFile, "f", "s", String(w)); err != nil {
				return false
			}
		}
		attrs, err := c.GetAttributes(alice, ObjectFile, "f")
		if err != nil || len(attrs) != 1 {
			return false
		}
		return attrs[0].Value.S == writes[len(writes)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCollectionChainNeverCycles: random sequences of re-parenting
// operations never produce a cycle (rejected moves leave the tree intact).
func TestQuickCollectionChainNeverCycles(t *testing.T) {
	c := openCatalog(t)
	const n = 8
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("qc-%d", i)
		if _, err := c.CreateCollection(alice, CollectionSpec{Name: names[i]}); err != nil {
			t.Fatal(err)
		}
	}
	f := func(moves []uint8) bool {
		for _, m := range moves {
			child := names[int(m)%n]
			parent := names[int(m/16)%n]
			// The call either succeeds or reports a cycle; both are fine.
			c.SetCollectionParent(alice, child, parent) //nolint:errcheck
		}
		// Invariant: walking up from any collection terminates.
		for _, name := range names {
			col, err := c.GetCollection(alice, name)
			if err != nil {
				return false
			}
			if _, err := c.collectionChain(col.ID); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickVersionsMonotonic: repeated creates of the same name assign
// strictly increasing versions, and every version is fetchable.
func TestQuickVersionsMonotonic(t *testing.T) {
	c := openCatalog(t)
	f := func(nRaw uint8) bool {
		n := int(nRaw%5) + 2
		name := fmt.Sprintf("ver-%d-%d", nRaw, time.Now().UnixNano())
		for i := 1; i <= n; i++ {
			fl, err := c.CreateFile(alice, FileSpec{Name: name})
			if err != nil || fl.Version != i {
				return false
			}
		}
		vs, err := c.FileVersions(alice, name)
		if err != nil || len(vs) != n {
			return false
		}
		for i, v := range vs {
			if v.Version != i+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAddDeleteLeavesNoResidue: create-with-attributes then delete
// always returns the catalog to its prior row counts.
func TestQuickAddDeleteLeavesNoResidue(t *testing.T) {
	c := openCatalog(t)
	c.DefineAttribute(alice, "k1", AttrString, "") //nolint:errcheck
	c.DefineAttribute(alice, "k2", AttrInt, "")    //nolint:errcheck
	before, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	f := func(name string, v int64) bool {
		if name == "" {
			return true
		}
		full := fmt.Sprintf("res-%x-%d", name, v)
		if _, err := c.CreateFile(alice, FileSpec{
			Name: full,
			Attributes: []Attribute{
				{Name: "k1", Value: String(name)},
				{Name: "k2", Value: Int(v)},
			},
			Provenance: "residue test",
		}); err != nil {
			return false
		}
		if _, err := c.Annotate(alice, ObjectFile, full, "tmp"); err != nil {
			return false
		}
		if err := c.DeleteFile(alice, full, 0); err != nil {
			return false
		}
		after, err := c.Stats()
		return err == nil && after == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
