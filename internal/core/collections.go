package core

import (
	"fmt"

	"mcs/internal/sqldb"
)

const collectionColumns = `id, name, description, parent_id, creator,
	last_modifier, created, modified, audited`

func scanCollection(row []sqldb.Value) Collection {
	col := Collection{
		ID:          row[0].Int(),
		Name:        row[1].S,
		Description: row[2].S,
	}
	if !row[3].IsNull() {
		col.ParentID = row[3].Int()
	}
	col.Creator = row[4].S
	col.LastModifier = row[5].S
	col.Created = row[6].Time()
	col.Modified = row[7].Time()
	col.Audited = row[8].Bool()
	return col
}

// CollectionSpec describes a logical collection to create.
type CollectionSpec struct {
	Name        string
	Description string
	Parent      string // optional parent collection name
	Audited     bool
	Attributes  []Attribute
}

// CreateCollection registers a logical collection. Collections form an
// acyclic tree: each has at most one parent.
func (c *Catalog) CreateCollection(dn string, spec CollectionSpec, opts ...OpOption) (Collection, error) {
	op := applyOpOptions(opts)
	if spec.Name == "" {
		return Collection{}, fmt.Errorf("%w: collection name required", ErrInvalidInput)
	}
	if err := c.requireService(dn, PermCreate); err != nil {
		return Collection{}, err
	}
	var parentID int64
	if spec.Parent != "" {
		parent, err := c.GetCollection(dn, spec.Parent)
		if err != nil {
			return Collection{}, fmt.Errorf("parent %q: %w", spec.Parent, err)
		}
		if err := c.requireObject(dn, ObjectCollection, parent.ID, PermWrite); err != nil {
			return Collection{}, err
		}
		parentID = parent.ID
	}
	type resolved struct {
		attrID int64
		col    string
		val    sqldb.Value
	}
	attrs := make([]resolved, 0, len(spec.Attributes))
	for _, a := range spec.Attributes {
		def, err := c.GetAttributeDef(a.Name)
		if err != nil {
			return Collection{}, fmt.Errorf("attribute %q: %w", a.Name, err)
		}
		if def.Type != a.Value.Type {
			return Collection{}, fmt.Errorf("%w: attribute %q is %s, value is %s",
				ErrInvalidInput, a.Name, def.Type, a.Value.Type)
		}
		attrs = append(attrs, resolved{def.ID, def.Type.storageColumn(), a.Value.sqlValue()})
	}
	var out Collection
	err := c.withReplay(op, "createCollection", &out, func(tx *sqldb.Tx) error {
		now := c.now()
		res, err := tx.Exec(`INSERT INTO logical_collection
			(name, description, parent_id, creator, last_modifier, created, modified, audited)
			VALUES (?, ?, ?, ?, ?, ?, ?, ?)`,
			sqldb.Text(spec.Name), sqldb.Text(spec.Description), nullableID(parentID),
			sqldb.Text(dn), sqldb.Text(dn), now, now, sqldb.Bool(spec.Audited))
		if err != nil {
			return err
		}
		id := res.LastInsertID
		for _, a := range attrs {
			if _, err := tx.Exec(fmt.Sprintf(
				"INSERT INTO user_attribute (object_type, object_id, attr_id, %s) VALUES (?, ?, ?, ?)", a.col),
				sqldb.Text(string(ObjectCollection)), sqldb.Int(id), sqldb.Int(a.attrID), a.val); err != nil {
				return err
			}
		}
		if spec.Audited {
			if err := c.auditTx(tx, ObjectCollection, id, "create", dn, spec.Name, op.requestID); err != nil {
				return err
			}
		}
		out = Collection{
			ID: id, Name: spec.Name, Description: spec.Description, ParentID: parentID,
			Creator: dn, LastModifier: dn, Created: now.Time(), Modified: now.Time(), Audited: spec.Audited,
		}
		return nil
	})
	if err != nil {
		return Collection{}, err
	}
	return out, nil
}

// GetCollection fetches a logical collection by name.
func (c *Catalog) GetCollection(dn, name string) (Collection, error) {
	return c.getCollectionQ(c.db, dn, name)
}

// getCollectionQ is GetCollection reading through q.
func (c *Catalog) getCollectionQ(q querier, dn, name string) (Collection, error) {
	rows, err := q.Query("SELECT "+collectionColumns+" FROM logical_collection WHERE name = ?",
		sqldb.Text(name))
	if err != nil {
		return Collection{}, err
	}
	if len(rows.Data) == 0 {
		return Collection{}, fmt.Errorf("%w: collection %q", ErrNotFound, name)
	}
	col := scanCollection(rows.Data[0])
	if err := c.requireObjectQ(q, dn, ObjectCollection, col.ID, PermRead); err != nil {
		return Collection{}, err
	}
	return col, nil
}

// CollectionContents lists the files and sub-collections directly contained
// in a logical collection.
func (c *Catalog) CollectionContents(dn, name string) (files []File, subs []Collection, err error) {
	col, err := c.GetCollection(dn, name)
	if err != nil {
		return nil, nil, err
	}
	frows, err := c.db.Query("SELECT "+fileColumns+" FROM logical_file WHERE collection_id = ? ORDER BY name",
		sqldb.Int(col.ID))
	if err != nil {
		return nil, nil, err
	}
	for _, row := range frows.Data {
		files = append(files, scanFile(row))
	}
	crows, err := c.db.Query("SELECT "+collectionColumns+" FROM logical_collection WHERE parent_id = ? ORDER BY name",
		sqldb.Int(col.ID))
	if err != nil {
		return nil, nil, err
	}
	for _, row := range crows.Data {
		subs = append(subs, scanCollection(row))
	}
	return files, subs, nil
}

// collectionChain returns the IDs of the collection and all its ancestors,
// guarding against malformed parent cycles.
func (c *Catalog) collectionChain(id int64) ([]int64, error) {
	return c.collectionChainQ(c.db, id)
}

// collectionChainQ is collectionChain reading through q. The old
// implementation issued one SELECT per hierarchy level; the walk now runs
// in memory over the parent map, fetched in a single statement (and served
// from the epoch-versioned hierarchy cache on the database read path), so
// statement count no longer grows with hierarchy depth.
func (c *Catalog) collectionChainQ(q querier, id int64) ([]int64, error) {
	parents, err := c.collectionParentsQ(q)
	if err != nil {
		return nil, err
	}
	var chain []int64
	seen := map[int64]bool{}
	for id != 0 {
		if seen[id] {
			return nil, fmt.Errorf("%w: collection hierarchy", ErrCycle)
		}
		seen[id] = true
		chain = append(chain, id)
		id = parents[id] // 0 when the parent is NULL or id is dangling
	}
	return chain, nil
}

// collectionParentsQ returns the collection id -> parent id map (0 for
// roots) in one statement, cached per commit epoch for database reads.
// Callers must treat the returned map as read-only: cache hits share it.
func (c *Catalog) collectionParentsQ(q querier) (map[int64]int64, error) {
	epoch, cacheable := c.cacheEpoch(q)
	if cacheable {
		if m, ok := c.hierCache.get(epoch, struct{}{}); ok {
			return m, nil
		}
	}
	rows, err := q.Query("SELECT id, parent_id FROM logical_collection")
	if err != nil {
		return nil, err
	}
	m := make(map[int64]int64, len(rows.Data))
	for _, r := range rows.Data {
		if r[1].IsNull() {
			m[r[0].Int()] = 0
		} else {
			m[r[0].Int()] = r[1].Int()
		}
	}
	if cacheable {
		c.hierCache.put(epoch, struct{}{}, m)
	}
	return m, nil
}

// SetCollectionParent re-parents a collection ("" makes it a root),
// refusing moves that would create a cycle.
func (c *Catalog) SetCollectionParent(dn, name, parent string) error {
	col, err := c.GetCollection(dn, name)
	if err != nil {
		return err
	}
	if err := c.requireObject(dn, ObjectCollection, col.ID, PermWrite); err != nil {
		return err
	}
	var parentID int64
	if parent != "" {
		p, err := c.GetCollection(dn, parent)
		if err != nil {
			return err
		}
		chain, err := c.collectionChain(p.ID)
		if err != nil {
			return err
		}
		for _, ancestor := range chain {
			if ancestor == col.ID {
				return fmt.Errorf("%w: %q is an ancestor of %q", ErrCycle, name, parent)
			}
		}
		parentID = p.ID
	}
	_, err = c.db.Exec("UPDATE logical_collection SET parent_id = ?, last_modifier = ?, modified = ? WHERE id = ?",
		nullableID(parentID), sqldb.Text(dn), c.now(), sqldb.Int(col.ID))
	return err
}

// DeleteCollection removes an empty logical collection.
func (c *Catalog) DeleteCollection(dn, name string, opts ...OpOption) error {
	op := applyOpOptions(opts)
	if hit, err := c.replayedEarly(op, "deleteCollection", nil); hit || err != nil {
		return err
	}
	col, err := c.GetCollection(dn, name)
	if err != nil {
		return err
	}
	if err := c.requireObject(dn, ObjectCollection, col.ID, PermDelete); err != nil {
		return err
	}
	nfiles, err := c.db.Query("SELECT COUNT(*) FROM logical_file WHERE collection_id = ?", sqldb.Int(col.ID))
	if err != nil {
		return err
	}
	nsubs, err := c.db.Query("SELECT COUNT(*) FROM logical_collection WHERE parent_id = ?", sqldb.Int(col.ID))
	if err != nil {
		return err
	}
	if nfiles.Data[0][0].Int() > 0 || nsubs.Data[0][0].Int() > 0 {
		return fmt.Errorf("%w: %q has %d files and %d sub-collections",
			ErrNotEmpty, name, nfiles.Data[0][0].Int(), nsubs.Data[0][0].Int())
	}
	return c.withReplay(op, "deleteCollection", nil, func(tx *sqldb.Tx) error {
		id := sqldb.Int(col.ID)
		ct := sqldb.Text(string(ObjectCollection))
		if _, err := tx.Exec("DELETE FROM logical_collection WHERE id = ?", id); err != nil {
			return err
		}
		for _, stmt := range []string{
			"DELETE FROM user_attribute WHERE object_type = ? AND object_id = ?",
			"DELETE FROM annotation WHERE object_type = ? AND object_id = ?",
			"DELETE FROM acl WHERE object_type = ? AND object_id = ?",
			"DELETE FROM view_member WHERE object_type = ? AND object_id = ?",
		} {
			if _, err := tx.Exec(stmt, ct, id); err != nil {
				return err
			}
		}
		if col.Audited {
			return c.auditTx(tx, ObjectCollection, col.ID, "delete", dn, col.Name, op.requestID)
		}
		return nil
	})
}

// ListCollections returns the names of all collections, optionally filtered
// by a LIKE pattern.
func (c *Catalog) ListCollections(dn, pattern string) ([]string, error) {
	var rows *sqldb.Rows
	var err error
	if pattern == "" {
		rows, err = c.db.Query("SELECT name FROM logical_collection ORDER BY name")
	} else {
		rows, err = c.db.Query("SELECT name FROM logical_collection WHERE name LIKE ? ORDER BY name",
			sqldb.Text(pattern))
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(rows.Data))
	for _, r := range rows.Data {
		names = append(names, r[0].S)
	}
	return names, nil
}
