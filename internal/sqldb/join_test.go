package sqldb

import (
	"fmt"
	"testing"
	"time"
)

// Join and planner edge cases beyond the basics in db_test.go.

func setupJoinDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(t, db, "CREATE TABLE dept (id INTEGER PRIMARY KEY, name TEXT)")
	mustExec(t, db, "CREATE TABLE emp (id INTEGER PRIMARY KEY, did INTEGER, name TEXT, salary INTEGER)")
	mustExec(t, db, "CREATE INDEX emp_did ON emp (did)")
	mustExec(t, db, "INSERT INTO dept (id, name) VALUES (1, 'eng'), (2, 'ops'), (3, 'empty')")
	mustExec(t, db, `INSERT INTO emp (id, did, name, salary) VALUES
		(10, 1, 'ann', 120), (11, 1, 'bob', 100), (12, 2, 'cat', 90), (13, NULL, 'dee', 80)`)
	return db
}

func TestJoinThreeWay(t *testing.T) {
	t.Parallel()
	db := setupJoinDB(t)
	mustExec(t, db, "CREATE TABLE badge (eid INTEGER, code TEXT)")
	mustExec(t, db, "CREATE INDEX badge_eid ON badge (eid)")
	mustExec(t, db, "INSERT INTO badge (eid, code) VALUES (10, 'A-1'), (11, 'B-2'), (12, 'C-3')")
	rows := mustQuery(t, db, `SELECT d.name, e.name, b.code
		FROM dept d JOIN emp e ON e.did = d.id JOIN badge b ON b.eid = e.id
		WHERE d.name = 'eng' ORDER BY e.name`)
	if len(rows.Data) != 2 {
		t.Fatalf("3-way join rows = %v", rows.Data)
	}
	if rows.Data[0][1].S != "ann" || rows.Data[0][2].S != "A-1" {
		t.Fatalf("3-way join first row = %v", rows.Data[0])
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	t.Parallel()
	db := setupJoinDB(t)
	// dee has NULL did: must not join to any department.
	rows := mustQuery(t, db, "SELECT e.name FROM emp e JOIN dept d ON d.id = e.did")
	if len(rows.Data) != 3 {
		t.Fatalf("null-key join rows = %d, want 3", len(rows.Data))
	}
	// But LEFT JOIN keeps dee with a NULL department.
	rows = mustQuery(t, db,
		"SELECT e.name, d.name FROM emp e LEFT JOIN dept d ON d.id = e.did ORDER BY e.name")
	if len(rows.Data) != 4 {
		t.Fatalf("left join rows = %d", len(rows.Data))
	}
	if rows.Data[3][0].S != "dee" || !rows.Data[3][1].IsNull() {
		t.Fatalf("left join null side = %v", rows.Data[3])
	}
}

func TestJoinWhereOnNullableSide(t *testing.T) {
	t.Parallel()
	db := setupJoinDB(t)
	// IS NULL on the nullable side selects exactly the unmatched rows.
	rows := mustQuery(t, db, `SELECT e.name FROM emp e LEFT JOIN dept d ON d.id = e.did
		WHERE d.name IS NULL`)
	if len(rows.Data) != 1 || rows.Data[0][0].S != "dee" {
		t.Fatalf("anti-join = %v", rows.Data)
	}
}

func TestJoinPredicatePushdown(t *testing.T) {
	t.Parallel()
	// A predicate on the joined table must prune before later stages: with
	// pushdown this query touches few intermediate rows; without it, the
	// cross product would still give the right answer but the per-stage
	// filters are what keeps the EAV self-join tractable. Correctness check:
	db := New()
	mustExec(t, db, "CREATE TABLE kv (oid INTEGER, k TEXT, v INTEGER)")
	mustExec(t, db, "CREATE INDEX kv_oid ON kv (oid)")
	mustExec(t, db, "CREATE INDEX kv_kv ON kv (k, v)")
	for oid := 1; oid <= 30; oid++ {
		for k := 0; k < 4; k++ {
			mustExec(t, db, "INSERT INTO kv (oid, k, v) VALUES (?, ?, ?)",
				Int(int64(oid)), Text(fmt.Sprintf("k%d", k)), Int(int64(oid%5)))
		}
	}
	rows := mustQuery(t, db, `SELECT DISTINCT a.oid FROM kv a
		JOIN kv b ON b.oid = a.oid
		JOIN kv c ON c.oid = a.oid
		WHERE a.k = 'k0' AND a.v = 2 AND b.k = 'k1' AND b.v = 2 AND c.k = 'k2' AND c.v = 2
		ORDER BY a.oid`)
	// oids with oid%5==2: 2,7,12,17,22,27 -> 6 rows.
	if len(rows.Data) != 6 {
		t.Fatalf("EAV 3-way self-join = %d rows: %v", len(rows.Data), rows.Data)
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	t.Parallel()
	db := setupJoinDB(t)
	rows := mustQuery(t, db, "SELECT did, name FROM emp WHERE did IS NOT NULL ORDER BY did DESC, name ASC")
	want := [][2]string{{"2", "cat"}, {"1", "ann"}, {"1", "bob"}}
	for i, w := range want {
		if rows.Data[i][0].String() != w[0] || rows.Data[i][1].S != w[1] {
			t.Fatalf("row %d = %v, want %v", i, rows.Data[i], w)
		}
	}
}

func TestOrderByJoinedColumn(t *testing.T) {
	t.Parallel()
	db := setupJoinDB(t)
	rows := mustQuery(t, db,
		"SELECT e.name FROM emp e JOIN dept d ON d.id = e.did ORDER BY d.name DESC, e.salary")
	// ops(cat), then eng by salary asc: bob(100), ann(120).
	got := []string{rows.Data[0][0].S, rows.Data[1][0].S, rows.Data[2][0].S}
	if got[0] != "cat" || got[1] != "bob" || got[2] != "ann" {
		t.Fatalf("order = %v", got)
	}
}

func TestInWithParams(t *testing.T) {
	t.Parallel()
	db := setupJoinDB(t)
	rows := mustQuery(t, db, "SELECT name FROM emp WHERE salary IN (?, ?) ORDER BY name",
		Int(100), Int(90))
	if len(rows.Data) != 2 || rows.Data[0][0].S != "bob" || rows.Data[1][0].S != "cat" {
		t.Fatalf("IN params = %v", rows.Data)
	}
}

func TestSelectExpressionProjection(t *testing.T) {
	t.Parallel()
	db := setupJoinDB(t)
	rows := mustQuery(t, db, "SELECT salary >= 100 AS senior FROM emp WHERE name = 'ann'")
	if rows.Columns[0] != "senior" || !rows.Data[0][0].Bool() {
		t.Fatalf("expr projection = %v %v", rows.Columns, rows.Data)
	}
}

func TestStarWithJoinQualifiesColumns(t *testing.T) {
	t.Parallel()
	db := setupJoinDB(t)
	rows := mustQuery(t, db, "SELECT * FROM dept d JOIN emp e ON e.did = d.id LIMIT 1")
	// dept has 2 columns, emp has 4: star over a join yields 6 qualified.
	if len(rows.Columns) != 6 {
		t.Fatalf("star columns = %v", rows.Columns)
	}
	if rows.Columns[0] != "d.id" || rows.Columns[2] != "e.id" {
		t.Fatalf("qualified names = %v", rows.Columns)
	}
}

func TestAmbiguousColumnRejected(t *testing.T) {
	t.Parallel()
	db := setupJoinDB(t)
	if _, err := db.Query("SELECT name FROM dept d JOIN emp e ON e.did = d.id"); err == nil {
		t.Fatal("ambiguous unqualified column accepted")
	}
	if _, err := db.Query("SELECT * FROM dept d JOIN dept d ON d.id = d.id"); err == nil {
		t.Fatal("duplicate alias accepted")
	}
}

func TestDatetimeRangePlan(t *testing.T) {
	t.Parallel()
	db := New()
	mustExec(t, db, "CREATE TABLE ev (at DATETIME)")
	mustExec(t, db, "CREATE INDEX ev_at ON ev (at)")
	base := time.Date(2003, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 50; i++ {
		mustExec(t, db, "INSERT INTO ev (at) VALUES (?)", Time(base.AddDate(0, 0, i)))
	}
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM ev WHERE at >= ? AND at < ?",
		Time(base.AddDate(0, 0, 10)), Time(base.AddDate(0, 0, 20)))
	if rows.Data[0][0].Int() != 10 {
		t.Fatalf("datetime range count = %v", rows.Data[0][0])
	}
	plan, err := db.Explain("SELECT * FROM ev WHERE at >= ?", Time(base))
	if err != nil {
		t.Fatal(err)
	}
	if plan != "index-range(ev_at)" {
		t.Fatalf("plan = %s", plan)
	}
}

func TestStatementCacheTransparency(t *testing.T) {
	t.Parallel()
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	// Same text, different params: cache must not leak parameter state.
	for i := 0; i < 100; i++ {
		mustExec(t, db, "INSERT INTO t (a) VALUES (?)", Int(int64(i)))
	}
	for i := 0; i < 100; i++ {
		rows := mustQuery(t, db, "SELECT a FROM t WHERE a = ?", Int(int64(i)))
		if len(rows.Data) != 1 || rows.Data[0][0].Int() != int64(i) {
			t.Fatalf("cached statement wrong result at %d: %v", i, rows.Data)
		}
	}
	// DDL after caching: dropped table invalidates behaviour correctly
	// (cached DML against a dropped table must fail, not crash).
	mustExec(t, db, "DROP TABLE t")
	if _, err := db.Query("SELECT a FROM t WHERE a = ?", Int(1)); err == nil {
		t.Fatal("query against dropped table succeeded")
	}
}

func TestUpdateWithExpressionOfOldValue(t *testing.T) {
	t.Parallel()
	db := setupJoinDB(t)
	// SET salary = salary is an identity write; verifies old-row env binding.
	res := mustExec(t, db, "UPDATE emp SET salary = salary WHERE did = 1")
	if res.RowsAffected != 2 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	rows := mustQuery(t, db, "SELECT salary FROM emp WHERE name = 'ann'")
	if rows.Data[0][0].Int() != 120 {
		t.Fatalf("identity update changed value: %v", rows.Data)
	}
}
