package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

type parser struct {
	toks   []token
	i      int
	params int
}

// Parse compiles one SQL statement. A trailing semicolon is allowed.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, fmt.Errorf("%w (in %q)", err, truncateSQL(src))
	}
	p.acceptSymbol(";")
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("sqldb: trailing input at %q (in %q)", p.cur().text, truncateSQL(src))
	}
	return st, nil
}

func truncateSQL(s string) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) > 80 {
		return s[:77] + "..."
	}
	return s
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokKeyword && p.cur().text == kw {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sqldb: expected %s, found %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return fmt.Errorf("sqldb: expected %q, found %q", s, p.cur().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sqldb: expected identifier, found %q", t.text)
	}
	p.i++
	return t.text, nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.acceptKeyword("SELECT"):
		return p.selectStmt()
	case p.acceptKeyword("INSERT"):
		return p.insertStmt()
	case p.acceptKeyword("UPDATE"):
		return p.updateStmt()
	case p.acceptKeyword("DELETE"):
		return p.deleteStmt()
	case p.acceptKeyword("CREATE"):
		return p.createStmt()
	case p.acceptKeyword("DROP"):
		return p.dropStmt()
	}
	return nil, fmt.Errorf("sqldb: unrecognized statement start %q", p.cur().text)
}

func (p *parser) createStmt() (Statement, error) {
	unique := p.acceptKeyword("UNIQUE")
	switch {
	case p.acceptKeyword("TABLE"):
		if unique {
			return nil, fmt.Errorf("sqldb: UNIQUE TABLE is not valid")
		}
		return p.createTable()
	case p.acceptKeyword("INDEX"):
		return p.createIndex(unique)
	}
	return nil, fmt.Errorf("sqldb: expected TABLE or INDEX after CREATE, found %q", p.cur().text)
}

func (p *parser) ifNotExists() (bool, error) {
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return false, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

func (p *parser) createTable() (Statement, error) {
	ine, err := p.ifNotExists()
	if err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	st := &CreateTableStmt{Name: name, IfNotExists: ine}
	for {
		col, err := p.columnDef()
		if err != nil {
			return nil, err
		}
		st.Columns = append(st.Columns, col)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) columnDef() (ColumnDef, error) {
	var col ColumnDef
	name, err := p.ident()
	if err != nil {
		return col, err
	}
	col.Name = name
	t := p.cur()
	if t.kind != tokKeyword {
		return col, fmt.Errorf("sqldb: expected column type, found %q", t.text)
	}
	switch t.text {
	case "INTEGER":
		col.Type = TypeInt
	case "FLOAT":
		col.Type = TypeFloat
	case "TEXT":
		col.Type = TypeText
	case "BOOLEAN":
		col.Type = TypeBool
	case "DATETIME":
		col.Type = TypeTime
	default:
		return col, fmt.Errorf("sqldb: unknown column type %q", t.text)
	}
	p.i++
	for {
		switch {
		case p.acceptKeyword("PRIMARY"):
			if err := p.expectKeyword("KEY"); err != nil {
				return col, err
			}
			col.PrimaryKey = true
			col.NotNull = true
		case p.acceptKeyword("AUTOINCREMENT"):
			if col.Type != TypeInt {
				return col, fmt.Errorf("sqldb: AUTOINCREMENT requires INTEGER column %q", col.Name)
			}
			col.AutoIncrement = true
		case p.acceptKeyword("NOT"):
			if err := p.expectKeyword("NULL"); err != nil {
				return col, err
			}
			col.NotNull = true
		case p.acceptKeyword("UNIQUE"):
			col.Unique = true
		default:
			return col, nil
		}
	}
}

func (p *parser) createIndex(unique bool) (Statement, error) {
	ine, err := p.ifNotExists()
	if err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	st := &CreateIndexStmt{Name: name, Table: table, Unique: unique, IfNotExists: ine}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Columns = append(st.Columns, col)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) dropStmt() (Statement, error) {
	switch {
	case p.acceptKeyword("TABLE"):
		ifExists := false
		if p.acceptKeyword("IF") {
			if err := p.expectKeyword("EXISTS"); err != nil {
				return nil, err
			}
			ifExists = true
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTableStmt{Name: name, IfExists: ifExists}, nil
	case p.acceptKeyword("INDEX"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropIndexStmt{Name: name}, nil
	}
	return nil, fmt.Errorf("sqldb: expected TABLE or INDEX after DROP, found %q", p.cur().text)
}

func (p *parser) insertStmt() (Statement, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: table}
	if p.acceptSymbol("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	return st, nil
}

func (p *parser) updateStmt() (Statement, error) {
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, Assignment{Column: col, Value: e})
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if p.acceptKeyword("WHERE") {
		st.Where, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: table}
	if p.acceptKeyword("WHERE") {
		st.Where, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) selectStmt() (Statement, error) {
	st := &SelectStmt{Limit: -1}
	st.Distinct = p.acceptKeyword("DISTINCT")
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	st.From = from
	for {
		left := false
		if p.acceptKeyword("LEFT") {
			left = true
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if p.acceptKeyword("INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.acceptKeyword("JOIN") {
			break
		}
		tr, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Joins = append(st.Joins, JoinClause{Left: left, Table: tr, On: on})
	}
	if p.acceptKeyword("WHERE") {
		st.Where, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.acceptKeyword("DESC") {
				key.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			st.OrderBy = append(st.OrderBy, key)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.intLiteral()
		if err != nil {
			return nil, err
		}
		st.Limit = n
		if p.acceptKeyword("OFFSET") {
			m, err := p.intLiteral()
			if err != nil {
				return nil, err
			}
			st.Offset = m
		}
	}
	return st, nil
}

func (p *parser) intLiteral() (int, error) {
	t := p.cur()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("sqldb: expected integer, found %q", t.text)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("sqldb: expected integer, found %q", t.text)
	}
	p.i++
	return n, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	if p.cur().kind == tokKeyword && p.cur().text == "COUNT" {
		p.i++
		if err := p.expectSymbol("("); err != nil {
			return SelectItem{}, err
		}
		if err := p.expectSymbol("*"); err != nil {
			return SelectItem{}, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return SelectItem{}, err
		}
		item := SelectItem{Count: true}
		if p.acceptKeyword("AS") {
			as, err := p.ident()
			if err != nil {
				return SelectItem{}, err
			}
			item.As = as
		}
		return item, nil
	}
	e, err := p.expression()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		as, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.As = as
	}
	return item, nil
}

func (p *parser) tableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Table: name, Alias: name}
	if p.acceptKeyword("AS") {
		alias, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = alias
	} else if p.cur().kind == tokIdent {
		tr.Alias = p.next().text
	}
	return tr, nil
}

// Expression grammar, loosest to tightest: OR, AND, NOT, comparison, primary.

func (p *parser) expression() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (Expr, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKeyword("IS") {
		not := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: l, Not: not}, nil
	}
	// [NOT] IN (...) / [NOT] LIKE
	notIn := false
	if p.cur().kind == tokKeyword && p.cur().text == "NOT" {
		save := p.i
		p.i++
		if p.cur().kind == tokKeyword && (p.cur().text == "IN" || p.cur().text == "LIKE") {
			notIn = true
		} else {
			p.i = save
		}
	}
	if p.acceptKeyword("IN") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		in := &InExpr{E: l, Not: notIn}
		for {
			e, err := p.primary()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, e)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return in, nil
	}
	if p.acceptKeyword("LIKE") {
		r, err := p.primary()
		if err != nil {
			return nil, err
		}
		var e Expr = &BinaryExpr{Op: "LIKE", L: l, R: r}
		if notIn {
			e = &UnaryExpr{Op: "NOT", E: e}
		}
		return e, nil
	}
	t := p.cur()
	if t.kind == tokSymbol {
		switch t.text {
		case "=", "<", "<=", ">", ">=", "<>", "!=":
			p.i++
			r, err := p.primary()
			if err != nil {
				return nil, err
			}
			op := t.text
			if op == "<>" {
				op = "!="
			}
			return &BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.i++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sqldb: bad number %q", t.text)
			}
			return &Literal{Val: Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sqldb: bad number %q", t.text)
		}
		return &Literal{Val: Int(n)}, nil
	case tokString:
		p.i++
		return &Literal{Val: Text(t.text)}, nil
	case tokParam:
		p.i++
		idx := p.params
		p.params++
		return &Param{Index: idx}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.i++
			return &Literal{Val: Null()}, nil
		case "TRUE":
			p.i++
			return &Literal{Val: Bool(true)}, nil
		case "FALSE":
			p.i++
			return &Literal{Val: Bool(false)}, nil
		}
	case tokIdent:
		p.i++
		if p.acceptSymbol(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.text, Column: col}, nil
		}
		return &ColumnRef{Column: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			p.i++
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("sqldb: unexpected token %q in expression", t.text)
}
