package sqldb

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// A Query must complete while another goroutine holds an open transaction:
// reads are wait-free against the last committed root.
func TestQueryCompletesDuringOpenTx(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "INSERT INTO files (name, size) VALUES ('a', 1)")

	tx := db.Begin()
	defer tx.Rollback() //nolint:errcheck
	if _, err := tx.Exec("INSERT INTO files (name, size) VALUES ('b', 2)"); err != nil {
		t.Fatal(err)
	}

	// The transaction is still open. A reader on another goroutine must
	// finish without waiting for it.
	done := make(chan *Rows, 1)
	errc := make(chan error, 1)
	go func() {
		rows, err := db.Query("SELECT name FROM files ORDER BY name")
		if err != nil {
			errc <- err
			return
		}
		done <- rows
	}()
	select {
	case rows := <-done:
		if len(rows.Data) != 1 || rows.Data[0][0].S != "a" {
			t.Fatalf("reader saw %v, want only the committed row 'a'", rows.Data)
		}
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("Query blocked behind an open Tx")
	}
}

// Concurrent readers observe a consistent pre-commit snapshot for the whole
// duration of a transaction, then see all of its writes after Commit.
func TestReadersSeeConsistentSnapshotMidTransaction(t *testing.T) {
	db := newTestDB(t)
	for i := 0; i < 10; i++ {
		mustExec(t, db, "INSERT INTO files (name, size) VALUES (?, ?)",
			Text(fmt.Sprintf("pre%02d", i)), Int(0))
	}

	tx := db.Begin()
	// Interleave transaction writes with reads from other goroutines: none
	// of the uncommitted rows may ever be visible, and the committed count
	// must hold steady at 10.
	for i := 0; i < 50; i++ {
		if _, err := tx.Exec("INSERT INTO files (name, size) VALUES (?, ?)",
			Text(fmt.Sprintf("txrow%02d", i)), Int(1)); err != nil {
			t.Fatal(err)
		}
		rows := mustQuery(t, db, "SELECT COUNT(*) FROM files")
		if n := rows.Data[0][0].Int(); n != 10 {
			t.Fatalf("mid-tx reader saw %d rows, want 10", n)
		}
		// The transaction itself sees its own writes.
		trows, err := tx.Query("SELECT COUNT(*) FROM files WHERE size = 1")
		if err != nil {
			t.Fatal(err)
		}
		if n := trows.Data[0][0].Int(); n != int64(i+1) {
			t.Fatalf("tx saw %d of its own rows, want %d", n, i+1)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM files")
	if n := rows.Data[0][0].Int(); n != 60 {
		t.Fatalf("post-commit count = %d, want 60", n)
	}
}

// Rollback publishes nothing: no rows, no index entries, no autoincrement
// movement, no epoch bump.
func TestRollbackPublishesNothing(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "INSERT INTO files (name, size) VALUES ('keep', 7)")
	epoch := db.Epoch()

	tx := db.Begin()
	for i := 0; i < 20; i++ {
		if _, err := tx.Exec("INSERT INTO files (name, size) VALUES (?, ?)",
			Text(fmt.Sprintf("gone%02d", i)), Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.Exec("UPDATE files SET size = 99 WHERE name = 'keep'"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("DELETE FROM files WHERE name = 'keep'"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}

	if got := db.Epoch(); got != epoch {
		t.Fatalf("rollback bumped epoch %d -> %d", epoch, got)
	}
	rows := mustQuery(t, db, "SELECT size FROM files WHERE name = 'keep'")
	if len(rows.Data) != 1 || rows.Data[0][0].Int() != 7 {
		t.Fatalf("rolled-back writes leaked: %v", rows.Data)
	}
	if n, _ := db.RowCount("files"); n != 1 {
		t.Fatalf("RowCount = %d, want 1", n)
	}
	// The unique index must not retain ghost entries: names used by the
	// rolled-back transaction are insertable again.
	mustExec(t, db, "INSERT INTO files (name, size) VALUES ('gone00', 1)")
	// Autoincrement did not advance past the rolled-back rows' ids.
	res := mustExec(t, db, "INSERT INTO files (name) VALUES ('next')")
	if res.LastInsertID != 3 {
		t.Fatalf("autoinc after rollback = %d, want 3", res.LastInsertID)
	}
}

// A write must commit while a large snapshot dump is in flight, and the
// dump must serialize the version it pinned, untouched by that write.
func TestSnapshotDoesNotBlockWriters(t *testing.T) {
	db := newTestDB(t)
	for i := 0; i < 3000; i++ {
		mustExec(t, db, "INSERT INTO files (name, size) VALUES (?, ?)",
			Text(fmt.Sprintf("f%05d", i)), Int(int64(i)))
	}

	// slowWriter stalls mid-dump after the first chunk until a concurrent
	// write has committed, proving Dump holds no lock writers need.
	committed := make(chan struct{})
	w := &slowWriter{started: make(chan struct{}), release: committed}
	writerDone := make(chan error, 1)
	go func() {
		<-w.started
		_, err := db.Exec("INSERT INTO files (name, size) VALUES ('during-dump', 1)")
		close(committed)
		writerDone <- err
	}()

	if err := db.Dump(w); err != nil {
		t.Fatal(err)
	}
	if err := <-writerDone; err != nil {
		t.Fatalf("write during dump: %v", err)
	}

	// The dump is the pinned pre-write version: restoring it yields 3000
	// rows, without the row committed mid-dump.
	db2 := New()
	if err := db2.LoadSnapshot(bytes.NewReader(w.buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if n, _ := db2.RowCount("files"); n != 3000 {
		t.Fatalf("restored %d rows, want 3000", n)
	}
	rows := mustQuery(t, db2, "SELECT * FROM files WHERE name = 'during-dump'")
	if len(rows.Data) != 0 {
		t.Fatal("snapshot includes a row committed after it was pinned")
	}
	// The live database has all 3001 rows.
	if n, _ := db.RowCount("files"); n != 3001 {
		t.Fatalf("live db has %d rows, want 3001", n)
	}
}

// slowWriter signals after the first Write and then blocks until released,
// holding the dump mid-serialization.
type slowWriter struct {
	buf      bytes.Buffer
	started  chan struct{}
	release  chan struct{}
	signaled bool
	waited   bool
}

func (w *slowWriter) Write(p []byte) (int, error) {
	if !w.signaled {
		w.signaled = true
		close(w.started)
	} else if !w.waited {
		w.waited = true
		select {
		case <-w.release:
		case <-time.After(5 * time.Second):
			return 0, fmt.Errorf("writer never committed while dump was stalled")
		}
	}
	return w.buf.Write(p)
}

// Epoch bumps once per committed write (batch transactions included) and
// stays put on reads and rollbacks.
func TestEpochAdvancesPerCommit(t *testing.T) {
	db := newTestDB(t)
	e0 := db.Epoch()
	mustExec(t, db, "INSERT INTO files (name) VALUES ('a')")
	if db.Epoch() != e0+1 {
		t.Fatalf("epoch after write = %d, want %d", db.Epoch(), e0+1)
	}
	mustQuery(t, db, "SELECT * FROM files")
	if db.Epoch() != e0+1 {
		t.Fatal("read bumped epoch")
	}
	if err := db.Update(func(tx *Tx) error {
		for i := 0; i < 5; i++ {
			if _, err := tx.Exec("INSERT INTO files (name) VALUES (?)",
				Text(fmt.Sprintf("b%d", i))); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if db.Epoch() != e0+2 {
		t.Fatalf("epoch after batch = %d, want %d", db.Epoch(), e0+2)
	}
}

// Hammer the engine from concurrent readers, a dumper and a writer; run
// with -race. Readers must always observe a consistent committed count
// (pairs of rows are inserted atomically, so counts stay even).
func TestConcurrentReadersWriterAndDumper(t *testing.T) {
	db := newTestDB(t)
	const writers = 1
	const readers = 4
	const rounds = 200

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rows, err := db.Query("SELECT COUNT(*) FROM files")
				if err != nil {
					t.Error(err)
					return
				}
				if n := rows.Data[0][0].Int(); n%2 != 0 {
					t.Errorf("reader saw odd row count %d (torn transaction)", n)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := db.Dump(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for i := 0; i < writers*rounds; i++ {
		err := db.Update(func(tx *Tx) error {
			if _, err := tx.Exec("INSERT INTO files (name) VALUES (?)",
				Text(fmt.Sprintf("p%04da", i))); err != nil {
				return err
			}
			_, err := tx.Exec("INSERT INTO files (name) VALUES (?)",
				Text(fmt.Sprintf("p%04db", i)))
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if n, _ := db.RowCount("files"); n != 2*writers*rounds {
		t.Fatalf("final count = %d, want %d", n, 2*writers*rounds)
	}
}

// stmtCache eviction: at the cap, inserting a new statement evicts exactly
// one arbitrary entry instead of dropping the whole cache.
func TestStmtCacheEvictsSingleEntry(t *testing.T) {
	db := newTestDB(t)
	fill := func(n int) {
		for i := 0; i < n; i++ {
			sql := fmt.Sprintf("SELECT id FROM files WHERE size = %d", i)
			if _, err := db.Query(sql); err != nil {
				t.Fatal(err)
			}
		}
	}
	fill(maxCachedStatements)
	db.stmtMu.RLock()
	n := len(db.stmtCache)
	db.stmtMu.RUnlock()
	if n != maxCachedStatements {
		t.Fatalf("cache holds %d statements, want %d", n, maxCachedStatements)
	}
	// One more unique statement: size must stay at the cap (one in, one out).
	if _, err := db.Query("SELECT id FROM files WHERE size = 99999999"); err != nil {
		t.Fatal(err)
	}
	db.stmtMu.RLock()
	n = len(db.stmtCache)
	_, kept := db.stmtCache["SELECT id FROM files WHERE size = 99999999"]
	db.stmtMu.RUnlock()
	if n != maxCachedStatements {
		t.Fatalf("cache holds %d statements after overflow, want %d (single eviction)", n, maxCachedStatements)
	}
	if !kept {
		t.Fatal("new statement not cached after eviction")
	}
}

// The planner turns `col IN (...)` over an indexed column into multi-point
// index probes instead of a full scan.
func TestPlannerUsesIndexForInList(t *testing.T) {
	db := newTestDB(t)
	for i := 0; i < 100; i++ {
		mustExec(t, db, "INSERT INTO files (name, size) VALUES (?, ?)",
			Text(fmt.Sprintf("f%03d", i)), Int(int64(i)))
	}
	plan, err := db.Explain("SELECT id FROM files WHERE name IN ('f001', 'f050', 'f099')")
	if err != nil {
		t.Fatal(err)
	}
	if plan != "index-in(files_name_key)" {
		t.Fatalf("plan = %q, want index-in(files_name_key)", plan)
	}
	rows := mustQuery(t, db, "SELECT name FROM files WHERE name IN ('f001', 'f050', 'f099', 'zzz') ORDER BY name")
	if len(rows.Data) != 3 {
		t.Fatalf("IN query returned %d rows, want 3: %v", len(rows.Data), rows.Data)
	}
	// Duplicated list values must not duplicate result rows.
	rows = mustQuery(t, db, "SELECT name FROM files WHERE name IN ('f007', 'f007')")
	if len(rows.Data) != 1 {
		t.Fatalf("duplicate IN values returned %d rows, want 1", len(rows.Data))
	}
	// Parameters work too.
	plan, err = db.Explain("SELECT id FROM files WHERE name IN (?, ?)", Text("a"), Text("b"))
	if err != nil {
		t.Fatal(err)
	}
	if plan != "index-in(files_name_key)" {
		t.Fatalf("param plan = %q, want index-in(files_name_key)", plan)
	}
}
