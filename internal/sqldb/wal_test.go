package sqldb

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// openTestWAL opens a WAL for db at path and attaches it, failing the test
// on error.
func openTestWAL(t *testing.T, path string, db *DB, opts WALOptions) (*WAL, ReplayStats) {
	t.Helper()
	w, stats, err := OpenWAL(path, db, db.LastLSN(), opts)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	db.AttachWAL(w)
	return w, stats
}

// dumpBytes serializes db deterministically for state-equality assertions.
func dumpBytes(t *testing.T, db *DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	return buf.Bytes()
}

func TestWALReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.wal")

	db := New()
	mustExec(t, db, "CREATE TABLE kv (k TEXT NOT NULL, v INTEGER NOT NULL)")
	w, stats := openTestWAL(t, path, db, WALOptions{})
	if stats.Records != 0 || stats.Applied != 0 {
		t.Fatalf("fresh log replayed %+v", stats)
	}

	// Mixed statement shapes and value types, including one logged via a
	// transaction, one via a prepared statement, and a zero-row UPDATE.
	mustExec(t, db, "INSERT INTO kv (k, v) VALUES (?, ?)", Text("a"), Int(1))
	st, err := db.Prepare("INSERT INTO kv (k, v) VALUES (?, ?)")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if _, err := st.Exec(Text("b"), Int(2)); err != nil {
		t.Fatalf("Stmt.Exec: %v", err)
	}
	if err := db.Update(func(tx *Tx) error {
		if _, err := tx.Exec("UPDATE kv SET v = ? WHERE k = ?", Int(10), Text("a")); err != nil {
			return err
		}
		_, err := tx.Exec("DELETE FROM kv WHERE k = ?", Text("b"))
		return err
	}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	mustExec(t, db, "UPDATE kv SET v = ? WHERE k = ?", Int(99), Text("missing"))

	if got := db.LastLSN(); got != 4 {
		t.Fatalf("LastLSN = %d, want 4", got)
	}
	want := dumpBytes(t, db)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Crash-restart: fresh engine, re-run the (deterministic) bootstrap
	// DDL, replay the log.
	db2 := New()
	mustExec(t, db2, "CREATE TABLE kv (k TEXT NOT NULL, v INTEGER NOT NULL)")
	w2, stats2 := openTestWAL(t, path, db2, WALOptions{})
	defer w2.Close()
	if stats2.Applied != 4 || stats2.LastLSN != 4 {
		t.Fatalf("replay stats = %+v, want 4 applied through lsn 4", stats2)
	}
	if got := dumpBytes(t, db2); !bytes.Equal(got, want) {
		t.Fatalf("replayed state differs from committed state")
	}
	if db2.LastLSN() != 4 {
		t.Fatalf("LastLSN after replay = %d, want 4", db2.LastLSN())
	}
}

func TestWALSnapshotSkipsCoveredRecords(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.wal")

	db := New()
	mustExec(t, db, "CREATE TABLE kv (k TEXT NOT NULL, v INTEGER NOT NULL)")
	w, _ := openTestWAL(t, path, db, WALOptions{})
	mustExec(t, db, "INSERT INTO kv (k, v) VALUES (?, ?)", Text("a"), Int(1))
	mustExec(t, db, "INSERT INTO kv (k, v) VALUES (?, ?)", Text("b"), Int(2))

	var snap bytes.Buffer
	if err := db.Dump(&snap); err != nil {
		t.Fatalf("Dump: %v", err)
	}

	mustExec(t, db, "INSERT INTO kv (k, v) VALUES (?, ?)", Text("c"), Int(3))
	want := dumpBytes(t, db)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Restore the snapshot (embeds LSN 2), replay: only record 3 applies.
	db2 := New()
	if err := db2.LoadSnapshot(&snap); err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if db2.LastLSN() != 2 {
		t.Fatalf("snapshot LSN = %d, want 2", db2.LastLSN())
	}
	w2, stats := openTestWAL(t, path, db2, WALOptions{})
	defer w2.Close()
	if stats.Records != 3 || stats.Applied != 1 {
		t.Fatalf("replay stats = %+v, want 3 records / 1 applied", stats)
	}
	if got := dumpBytes(t, db2); !bytes.Equal(got, want) {
		t.Fatalf("restored+replayed state differs")
	}
}

func TestWALRotateAndDropCovered(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.wal")

	db := New()
	mustExec(t, db, "CREATE TABLE kv (k TEXT NOT NULL, v INTEGER NOT NULL)")
	w, _ := openTestWAL(t, path, db, WALOptions{})
	defer w.Close()
	mustExec(t, db, "INSERT INTO kv (k, v) VALUES (?, ?)", Text("a"), Int(1))

	if err := w.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if !w.Sealed() {
		t.Fatal("Rotate did not seal a previous generation")
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("sealed file missing: %v", err)
	}

	// A checkpoint that does NOT cover the sealed records must not drop them.
	if err := w.DropCovered(0); err != nil {
		t.Fatalf("DropCovered(0): %v", err)
	}
	if !w.Sealed() {
		t.Fatal("DropCovered(0) dropped an uncovered generation")
	}

	// A second rotation while sealed is a no-op (records keep accumulating).
	mustExec(t, db, "INSERT INTO kv (k, v) VALUES (?, ?)", Text("b"), Int(2))
	if err := w.Rotate(); err != nil {
		t.Fatalf("Rotate while sealed: %v", err)
	}

	// Covered: sealed generation goes away.
	if err := w.DropCovered(db.LastLSN()); err != nil {
		t.Fatalf("DropCovered: %v", err)
	}
	if w.Sealed() {
		t.Fatal("DropCovered left the generation sealed")
	}
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Fatalf("sealed file still present: %v", err)
	}

	// Appends keep flowing into the current generation after the drop.
	mustExec(t, db, "INSERT INTO kv (k, v) VALUES (?, ?)", Text("c"), Int(3))
	if db.LastLSN() != 3 {
		t.Fatalf("LastLSN = %d, want 3", db.LastLSN())
	}
}

func TestWALCrashMidRotationReplaysBothGenerations(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.wal")

	db := New()
	mustExec(t, db, "CREATE TABLE kv (k TEXT NOT NULL, v INTEGER NOT NULL)")
	w, _ := openTestWAL(t, path, db, WALOptions{})
	mustExec(t, db, "INSERT INTO kv (k, v) VALUES (?, ?)", Text("a"), Int(1))
	if err := w.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	mustExec(t, db, "INSERT INTO kv (k, v) VALUES (?, ?)", Text("b"), Int(2))
	want := dumpBytes(t, db)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Crash before the checkpoint snapshot persisted: both <path>.1 and
	// <path> are on disk and both must replay, in order.
	db2 := New()
	mustExec(t, db2, "CREATE TABLE kv (k TEXT NOT NULL, v INTEGER NOT NULL)")
	w2, stats := openTestWAL(t, path, db2, WALOptions{})
	defer w2.Close()
	if stats.Applied != 2 {
		t.Fatalf("replay stats = %+v, want 2 applied", stats)
	}
	if got := dumpBytes(t, db2); !bytes.Equal(got, want) {
		t.Fatalf("replayed state differs")
	}
	// New appends continue above the recovered high-water mark.
	mustExec(t, db2, "INSERT INTO kv (k, v) VALUES (?, ?)", Text("c"), Int(3))
	if db2.LastLSN() != 3 {
		t.Fatalf("LastLSN = %d, want 3", db2.LastLSN())
	}
}

func TestWALAppendFailureAbortsCommit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.wal")

	db := New()
	mustExec(t, db, "CREATE TABLE kv (k TEXT NOT NULL, v INTEGER NOT NULL)")
	w, _ := openTestWAL(t, path, db, WALOptions{})
	defer w.Close()
	mustExec(t, db, "INSERT INTO kv (k, v) VALUES (?, ?)", Text("a"), Int(1))

	boom := errors.New("injected append failure")
	w.SetFaultHook(func(op string) *WALFault {
		if op == "append" {
			return &WALFault{Err: boom}
		}
		return nil
	})
	if _, err := db.Exec("INSERT INTO kv (k, v) VALUES (?, ?)", Text("b"), Int(2)); !errors.Is(err, boom) {
		t.Fatalf("Exec with failing append: err = %v, want %v", err, boom)
	}
	w.SetFaultHook(nil)

	// The failed commit published nothing: the row is absent and the LSN
	// did not advance.
	if n, _ := db.RowCount("kv"); n != 1 {
		t.Fatalf("rows after aborted commit = %d, want 1", n)
	}
	if db.LastLSN() != 1 {
		t.Fatalf("LastLSN after aborted commit = %d, want 1", db.LastLSN())
	}
	// And the engine still accepts (and logs) new commits.
	mustExec(t, db, "INSERT INTO kv (k, v) VALUES (?, ?)", Text("c"), Int(3))
	if db.LastLSN() != 2 {
		t.Fatalf("LastLSN = %d, want 2", db.LastLSN())
	}
}

func TestWALShortWriteRewindsLiveLog(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.wal")

	db := New()
	mustExec(t, db, "CREATE TABLE kv (k TEXT NOT NULL, v INTEGER NOT NULL)")
	w, _ := openTestWAL(t, path, db, WALOptions{})
	mustExec(t, db, "INSERT INTO kv (k, v) VALUES (?, ?)", Text("a"), Int(1))
	if err := w.waitDurable(1); err != nil {
		t.Fatalf("waitDurable: %v", err)
	}

	boom := errors.New("injected torn write")
	w.SetFaultHook(func(op string) *WALFault {
		if op == "append" {
			return &WALFault{Err: boom, ShortWrite: 5}
		}
		return nil
	})
	if _, err := db.Exec("INSERT INTO kv (k, v) VALUES (?, ?)", Text("b"), Int(2)); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	w.SetFaultHook(nil)

	// The torn prefix was rewound: the next commit lands on a clean
	// boundary and the whole log replays.
	mustExec(t, db, "INSERT INTO kv (k, v) VALUES (?, ?)", Text("c"), Int(3))
	want := dumpBytes(t, db)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2 := New()
	mustExec(t, db2, "CREATE TABLE kv (k TEXT NOT NULL, v INTEGER NOT NULL)")
	w2, stats := openTestWAL(t, path, db2, WALOptions{})
	defer w2.Close()
	if stats.TornBytes != 0 {
		t.Fatalf("TornBytes = %d after in-process rewind, want 0", stats.TornBytes)
	}
	if stats.Applied != 2 {
		t.Fatalf("Applied = %d, want 2", stats.Applied)
	}
	if got := dumpBytes(t, db2); !bytes.Equal(got, want) {
		t.Fatalf("replayed state differs")
	}
}

func TestWALFsyncErrorPropagatesToCoveredCommits(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.wal")

	db := New()
	mustExec(t, db, "CREATE TABLE kv (k TEXT NOT NULL, v INTEGER NOT NULL)")
	w, _ := openTestWAL(t, path, db, WALOptions{})
	defer w.Close()

	boom := errors.New("injected fsync failure")
	w.SetFaultHook(func(op string) *WALFault {
		if op == "fsync" {
			return &WALFault{Err: boom}
		}
		return nil
	})
	if _, err := db.Exec("INSERT INTO kv (k, v) VALUES (?, ?)", Text("a"), Int(1)); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	w.SetFaultHook(nil)

	// The record is in the log and the root was published (durability was
	// uncertain, visibility is not); a later successful fsync covers it.
	mustExec(t, db, "INSERT INTO kv (k, v) VALUES (?, ?)", Text("b"), Int(2))
	if got := w.DurableLSN(); got != 2 {
		t.Fatalf("DurableLSN = %d, want 2", got)
	}
}

func TestWALGroupCommitBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.wal")

	db := New()
	mustExec(t, db, "CREATE TABLE kv (k TEXT NOT NULL, v INTEGER NOT NULL)")
	w, _ := openTestWAL(t, path, db, WALOptions{})
	defer w.Close()

	// Make each fsync round slow enough that concurrent committers pile up
	// behind the leader and get covered in batches.
	w.SetFaultHook(func(op string) *WALFault {
		if op == "fsync" {
			return &WALFault{Delay: time.Millisecond}
		}
		return nil
	})

	const (
		goroutines        = 8
		commitsPerRoutine = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < commitsPerRoutine; i++ {
				tx := db.Begin()
				if _, err := tx.Exec("INSERT INTO kv (k, v) VALUES (?, ?)",
					Text(fmt.Sprintf("g%d-%d", g, i)), Int(int64(i))); err != nil {
					tx.Rollback() //nolint:errcheck
					errs <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
				// The acknowledgment contract: by the time Commit returns,
				// an fsync covers this commit's LSN.
				if d := w.DurableLSN(); d < tx.LSN() {
					errs <- fmt.Errorf("commit lsn %d acked with durable lsn %d", tx.LSN(), d)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := uint64(goroutines * commitsPerRoutine)
	st := w.Stats()
	if st.Appends != total {
		t.Fatalf("Appends = %d, want %d", st.Appends, total)
	}
	if st.Fsyncs >= total/2 {
		t.Fatalf("Fsyncs = %d for %d commits: group commit is not batching", st.Fsyncs, total)
	}
	if n, _ := db.RowCount("kv"); n != int(total) {
		t.Fatalf("rows = %d, want %d", n, total)
	}
}

func TestWALNoSyncStillReplays(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.wal")

	db := New()
	mustExec(t, db, "CREATE TABLE kv (k TEXT NOT NULL, v INTEGER NOT NULL)")
	w, _ := openTestWAL(t, path, db, WALOptions{NoSync: true})
	mustExec(t, db, "INSERT INTO kv (k, v) VALUES (?, ?)", Text("a"), Int(1))
	want := dumpBytes(t, db)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2 := New()
	mustExec(t, db2, "CREATE TABLE kv (k TEXT NOT NULL, v INTEGER NOT NULL)")
	w2, stats := openTestWAL(t, path, db2, WALOptions{NoSync: true})
	defer w2.Close()
	if stats.Applied != 1 {
		t.Fatalf("Applied = %d, want 1", stats.Applied)
	}
	if got := dumpBytes(t, db2); !bytes.Equal(got, want) {
		t.Fatalf("replayed state differs")
	}
}

func TestWALValueRoundTrip(t *testing.T) {
	now := time.Now().UTC().Truncate(time.Second)
	vals := []Value{
		Null(), Int(-42), Int(1 << 60), Float(3.25), Float(-0.0),
		Text(""), Text("héllo\x00world"), Bool(true), Bool(false), Time(now),
	}
	rec := encodeWALRecord(7, []redoStmt{{sql: "INSERT INTO t VALUES (?)", args: vals}})
	lsn, stmts, err := decodeWALRecord(rec[walRecordHeaderSize:])
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if lsn != 7 || len(stmts) != 1 || stmts[0].sql != "INSERT INTO t VALUES (?)" {
		t.Fatalf("decoded %d stmts, lsn %d", len(stmts), lsn)
	}
	for i, v := range vals {
		if !Equal(stmts[0].args[i], v) || stmts[0].args[i].T != v.T {
			t.Fatalf("arg %d: got %v (%v), want %v (%v)",
				i, stmts[0].args[i], stmts[0].args[i].T, v, v.T)
		}
	}
}
