package sqldb

import (
	"strings"
	"testing"
)

func TestLexBasic(t *testing.T) {
	toks, err := lex("SELECT a, b FROM t WHERE x = 'it''s' AND y >= 3.5 -- comment\n LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
		texts = append(texts, tok.text)
	}
	if texts[0] != "SELECT" || kinds[0] != tokKeyword {
		t.Fatalf("first token = %v %q", kinds[0], texts[0])
	}
	// string literal with escaped quote
	found := false
	for i, k := range kinds {
		if k == tokString {
			if texts[i] != "it's" {
				t.Fatalf("string literal = %q", texts[i])
			}
			found = true
		}
	}
	if !found {
		t.Fatal("string literal not lexed")
	}
	if kinds[len(kinds)-1] != tokEOF {
		t.Fatal("missing EOF token")
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Fatal("unterminated string did not fail")
	}
	if _, err := lex("SELECT @"); err == nil {
		t.Fatal("bad character did not fail")
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := lex("1 2.5 .5 1e3 1.5e-2 3E+4")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1", "2.5", ".5", "1e3", "1.5e-2", "3E+4"}
	for i, w := range want {
		if toks[i].kind != tokNumber || toks[i].text != w {
			t.Fatalf("token %d = %v %q, want number %q", i, toks[i].kind, toks[i].text, w)
		}
	}
}

func TestParseSelectShape(t *testing.T) {
	st, err := Parse(`SELECT DISTINCT f.name AS n, COUNT(*) FROM files f
		JOIN attrs a ON a.fid = f.id
		LEFT JOIN extra e ON e.fid = f.id
		WHERE f.size > 10 AND a.k = 'x' OR NOT f.valid
		ORDER BY f.name DESC, f.size LIMIT 5 OFFSET 2;`)
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectStmt)
	if !sel.Distinct || len(sel.Items) != 2 || len(sel.Joins) != 2 {
		t.Fatalf("parsed shape: %+v", sel)
	}
	if sel.Items[0].As != "n" || !sel.Items[1].Count {
		t.Fatalf("items: %+v", sel.Items)
	}
	if !sel.Joins[1].Left || sel.Joins[0].Left {
		t.Fatalf("join leftness: %+v", sel.Joins)
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Fatalf("order by: %+v", sel.OrderBy)
	}
	if sel.Limit != 5 || sel.Offset != 2 {
		t.Fatalf("limit/offset: %d/%d", sel.Limit, sel.Offset)
	}
}

func TestParseTableAlias(t *testing.T) {
	st, err := Parse("SELECT * FROM files AS f WHERE f.id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*SelectStmt).From.Alias != "f" {
		t.Fatal("AS alias not applied")
	}
	st, err = Parse("SELECT * FROM files f")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*SelectStmt).From.Alias != "f" {
		t.Fatal("bare alias not applied")
	}
}

func TestParseParamNumbering(t *testing.T) {
	st, err := Parse("SELECT * FROM t WHERE a = ? AND b = ? AND c IN (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	// Count Param indexes: must be 0..3 in order.
	var idxs []int
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *Param:
			idxs = append(idxs, x.Index)
		case *BinaryExpr:
			walk(x.L)
			walk(x.R)
		case *InExpr:
			walk(x.E)
			for _, it := range x.List {
				walk(it)
			}
		case *UnaryExpr:
			walk(x.E)
		}
	}
	walk(st.(*SelectStmt).Where)
	if len(idxs) != 4 {
		t.Fatalf("param count = %d", len(idxs))
	}
	for i, idx := range idxs {
		if idx != i {
			t.Fatalf("param %d numbered %d", i, idx)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	st, err := Parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	// Must parse as a=1 OR (b=2 AND c=3)
	or := st.(*SelectStmt).Where.(*BinaryExpr)
	if or.Op != "OR" {
		t.Fatalf("top op = %s", or.Op)
	}
	and, ok := or.R.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("right side = %s", exprString(or.R))
	}
	// Parenthesized override
	st, _ = Parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3")
	and2 := st.(*SelectStmt).Where.(*BinaryExpr)
	if and2.Op != "AND" {
		t.Fatalf("paren top op = %s", and2.Op)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t GARBAGE TRAILING",
		"INSERT INTO t (a VALUES (1)",
		"CREATE UNIQUE TABLE t (a INTEGER)",
		"UPDATE t SET WHERE a = 1",
		"DELETE t WHERE a = 1",
		"CREATE INDEX i ON t ()",
		"SELECT * FROM t LIMIT xyz",
		"SELECT * FROM t WHERE a LIKE",
		"CREATE TABLE t (a TEXT AUTOINCREMENT)",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) did not fail", sql)
		}
	}
}

func TestParseErrorIncludesSQL(t *testing.T) {
	_, err := Parse("SELECT * FROM t WHERE ???")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "SELECT * FROM t") {
		t.Fatalf("error lacks statement context: %v", err)
	}
}

func TestParseInsertMultiRow(t *testing.T) {
	st, err := Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y'), (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*InsertStmt)
	if len(ins.Rows) != 3 || len(ins.Columns) != 2 {
		t.Fatalf("insert shape: %+v", ins)
	}
}

func TestParseColumnConstraints(t *testing.T) {
	st, err := Parse(`CREATE TABLE t (
		id INTEGER PRIMARY KEY AUTOINCREMENT,
		name TEXT NOT NULL UNIQUE,
		v FLOAT)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTableStmt)
	if !ct.Columns[0].PrimaryKey || !ct.Columns[0].AutoIncrement || !ct.Columns[0].NotNull {
		t.Fatalf("id constraints: %+v", ct.Columns[0])
	}
	if !ct.Columns[1].NotNull || !ct.Columns[1].Unique {
		t.Fatalf("name constraints: %+v", ct.Columns[1])
	}
}
