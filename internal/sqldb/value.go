// Package sqldb is an embedded relational database engine.
//
// It stands in for the MySQL 4.1 backend of the original MCS deployment:
// typed rows, B-tree secondary indexes, a SQL dialect large enough for the
// MCS schema (CREATE TABLE/INDEX, INSERT, SELECT with joins, UPDATE, DELETE,
// parameter placeholders), a planner that routes equality and range
// predicates to indexes, and serializable transactions with rollback.
//
// The engine is deliberately in-memory: the paper's scalability study
// measures query/add throughput against a warm database, and MySQL's own
// buffer pool keeps the working set resident in that study too.
package sqldb

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Type enumerates the value types a column can hold.
type Type int

// Column and literal types. TypeNull is the type of the SQL NULL literal and
// of absent values; columns themselves are never declared NULL.
const (
	TypeNull Type = iota
	TypeInt
	TypeFloat
	TypeText
	TypeBool
	TypeTime
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return "INTEGER"
	case TypeFloat:
		return "FLOAT"
	case TypeText:
		return "TEXT"
	case TypeBool:
		return "BOOLEAN"
	case TypeTime:
		return "DATETIME"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// Value is a single typed cell. The zero Value is NULL.
//
// It is a tagged union: the scalar types (INTEGER, FLOAT, BOOLEAN, DATETIME)
// all pack into N — floats as their IEEE-754 bit pattern, booleans as 0/1,
// datetimes as unix microseconds — and only TEXT uses S. At 32 bytes a Value
// is less than half its previous 72-byte layout (which carried an int64, a
// float64, a bool and an embedded time.Time side by side), which matters
// because every copy-on-write btree node copy moves whole arrays of them.
// Values are also cleanly comparable with ==: the unix-micros datetime
// representation has no monotonic-clock or location pointer the way
// time.Time does, so a value replayed from the WAL is ==-equal to the one
// originally committed.
type Value struct {
	T Type
	N int64
	S string
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// Int returns an INTEGER value.
func Int(v int64) Value { return Value{T: TypeInt, N: v} }

// Float returns a FLOAT value.
func Float(v float64) Value { return Value{T: TypeFloat, N: int64(math.Float64bits(v))} }

// Text returns a TEXT value.
func Text(v string) Value { return Value{T: TypeText, S: v} }

// Bool returns a BOOLEAN value.
func Bool(v bool) Value {
	if v {
		return Value{T: TypeBool, N: 1}
	}
	return Value{T: TypeBool}
}

// timeUnit is the resolution of the DATETIME payload: unix microseconds.
// Nanoseconds would be the obvious unit, but their int64 range only spans
// the years 1678–2262 and the MCS schema stores time-of-day attributes as
// year-1 DATETIMEs; microseconds cover ±292k years and still pack the
// timestamp into one word.
const timeUnit = int64(time.Microsecond)

// Time returns a DATETIME value, truncated to whole seconds in UTC so
// round-trips through the text protocol are loss-free. Storing a unix
// offset (rather than the time.Time itself) discards any monotonic clock
// reading at ingest, so a timestamp read back after WAL replay or a
// snapshot reload is ==-equal to the original.
func Time(v time.Time) Value {
	return Value{T: TypeTime, N: v.Unix() * (int64(time.Second) / timeUnit)}
}

// TimeMicros returns a DATETIME value at full microsecond precision from a
// unix-microseconds reading. The text protocol truncates to seconds; this
// constructor exists for decoders that must reproduce a stored value
// bit-for-bit.
func TimeMicros(us int64) Value { return Value{T: TypeTime, N: us} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.T == TypeNull }

// Int returns the INTEGER payload. Valid only when T == TypeInt.
func (v Value) Int() int64 { return v.N }

// Float returns the FLOAT payload. Valid only when T == TypeFloat.
func (v Value) Float() float64 { return math.Float64frombits(uint64(v.N)) }

// Bool returns the BOOLEAN payload. Valid only when T == TypeBool.
func (v Value) Bool() bool { return v.N != 0 }

// Time returns the DATETIME payload in UTC. Valid only when T == TypeTime.
func (v Value) Time() time.Time {
	perSec := int64(time.Second) / timeUnit
	// Split before converting: v.N*timeUnit would overflow for dates far
	// from the epoch (the year-1 time-of-day convention). time.Unix
	// normalizes a negative nanosecond remainder.
	return time.Unix(v.N/perSec, (v.N%perSec)*timeUnit).UTC()
}

// UnixMicros returns the raw DATETIME payload (unix microseconds). Valid
// only when T == TypeTime.
func (v Value) UnixMicros() int64 { return v.N }

// String renders the value as it would appear in a result set.
func (v Value) String() string {
	switch v.T {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return strconv.FormatInt(v.N, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.Float(), 'g', -1, 64)
	case TypeText:
		return v.S
	case TypeBool:
		if v.N != 0 {
			return "TRUE"
		}
		return "FALSE"
	case TypeTime:
		return v.Time().Format(time.RFC3339)
	}
	return "?"
}

// numeric reports whether the value can participate in numeric comparison,
// returning it widened to float64.
func (v Value) numeric() (float64, bool) {
	switch v.T {
	case TypeInt:
		return float64(v.N), true
	case TypeFloat:
		return v.Float(), true
	}
	return 0, false
}

// Compare orders two values: -1, 0 or +1. NULL orders before everything.
// Int and Float compare numerically against each other; other cross-type
// comparisons order by type tag (stable, arbitrary), mirroring the behaviour
// MCS relies on (it never compares across types except int/float).
func Compare(a, b Value) int {
	if a.T == TypeNull || b.T == TypeNull {
		switch {
		case a.T == b.T:
			return 0
		case a.T == TypeNull:
			return -1
		default:
			return 1
		}
	}
	// Same-type scalar fast path: INTEGER, BOOLEAN and DATETIME all order by
	// their int64 payload directly. This is the comparison the index trees
	// run on every node visit.
	if a.T == b.T {
		switch a.T {
		case TypeInt, TypeBool, TypeTime:
			switch {
			case a.N < b.N:
				return -1
			case a.N > b.N:
				return 1
			}
			return 0
		case TypeText:
			// Equality first: == short-circuits on pointer identity, and
			// stored text is interned (see completeRow), so comparing a
			// value against an equal stored value is a pointer check.
			if a.S == b.S {
				return 0
			}
			return strings.Compare(a.S, b.S)
		}
	}
	if af, ok := a.numeric(); ok {
		if bf, ok := b.numeric(); ok {
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			}
			// Equal as floats; break ties so 1 and 1.0 stay equal but the
			// ordering over int64 beyond float precision remains sane.
			if a.T == TypeInt && b.T == TypeInt {
				switch {
				case a.N < b.N:
					return -1
				case a.N > b.N:
					return 1
				}
			}
			return 0
		}
	}
	if a.T != b.T {
		switch {
		case a.T < b.T:
			return -1
		default:
			return 1
		}
	}
	return 0
}

// Equal reports whether a and b compare equal. NULL never equals anything,
// including NULL (SQL three-valued logic is applied by the evaluator; Equal
// is the raw tuple-identity used by indexes, where NULL == NULL).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// valuesEq reports Compare(*a, *b) == 0 through pointers, with same-type
// fast paths cheap enough for per-entry use in index scans: every same-type
// pair except FLOAT decides on one field compare (NULLs always carry N=0,
// scalars order by N, TEXT by S — interned, so usually a pointer check).
// Same-type FLOAT can only short-circuit the equal case: distinct bit
// patterns may still compare equal (-0.0 vs 0.0), so inequality and every
// cross-type pair fall back to the full comparator.
func valuesEq(a, b *Value) bool {
	if a.T == b.T {
		switch a.T {
		case TypeText:
			return a.S == b.S
		case TypeFloat:
			if a.N == b.N {
				return true
			}
		default:
			return a.N == b.N
		}
	}
	return Compare(*a, *b) == 0
}

// coerce converts v to column type t where a lossless conversion exists.
func coerce(v Value, t Type) (Value, error) {
	if v.T == TypeNull || v.T == t {
		return v, nil
	}
	switch t {
	case TypeFloat:
		if v.T == TypeInt {
			return Float(float64(v.N)), nil
		}
	case TypeInt:
		if v.T == TypeFloat {
			if f := v.Float(); f == float64(int64(f)) {
				return Int(int64(f)), nil
			}
		}
	case TypeTime:
		if v.T == TypeText {
			for _, layout := range []string{time.RFC3339, "2006-01-02 15:04:05", "2006-01-02"} {
				if m, err := time.Parse(layout, v.S); err == nil {
					return Time(m), nil
				}
			}
			return Value{}, fmt.Errorf("sqldb: cannot parse %q as DATETIME", v.S)
		}
	case TypeText:
		if v.T == TypeTime {
			return Text(v.Time().Format(time.RFC3339)), nil
		}
	}
	return Value{}, fmt.Errorf("sqldb: cannot store %s value in %s column", v.T, t)
}
