// Package sqldb is an embedded relational database engine.
//
// It stands in for the MySQL 4.1 backend of the original MCS deployment:
// typed rows, B-tree secondary indexes, a SQL dialect large enough for the
// MCS schema (CREATE TABLE/INDEX, INSERT, SELECT with joins, UPDATE, DELETE,
// parameter placeholders), a planner that routes equality and range
// predicates to indexes, and serializable transactions with rollback.
//
// The engine is deliberately in-memory: the paper's scalability study
// measures query/add throughput against a warm database, and MySQL's own
// buffer pool keeps the working set resident in that study too.
package sqldb

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Type enumerates the value types a column can hold.
type Type int

// Column and literal types. TypeNull is the type of the SQL NULL literal and
// of absent values; columns themselves are never declared NULL.
const (
	TypeNull Type = iota
	TypeInt
	TypeFloat
	TypeText
	TypeBool
	TypeTime
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return "INTEGER"
	case TypeFloat:
		return "FLOAT"
	case TypeText:
		return "TEXT"
	case TypeBool:
		return "BOOLEAN"
	case TypeTime:
		return "DATETIME"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// Value is a single typed cell. The zero Value is NULL.
type Value struct {
	T Type
	I int64
	F float64
	S string
	B bool
	M time.Time
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// Int returns an INTEGER value.
func Int(v int64) Value { return Value{T: TypeInt, I: v} }

// Float returns a FLOAT value.
func Float(v float64) Value { return Value{T: TypeFloat, F: v} }

// Text returns a TEXT value.
func Text(v string) Value { return Value{T: TypeText, S: v} }

// Bool returns a BOOLEAN value.
func Bool(v bool) Value { return Value{T: TypeBool, B: v} }

// Time returns a DATETIME value, truncated to whole seconds in UTC so
// round-trips through the text protocol are loss-free.
func Time(v time.Time) Value { return Value{T: TypeTime, M: v.UTC().Truncate(time.Second)} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.T == TypeNull }

// String renders the value as it would appear in a result set.
func (v Value) String() string {
	switch v.T {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TypeText:
		return v.S
	case TypeBool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	case TypeTime:
		return v.M.Format(time.RFC3339)
	}
	return "?"
}

// numeric reports whether the value can participate in numeric comparison,
// returning it widened to float64.
func (v Value) numeric() (float64, bool) {
	switch v.T {
	case TypeInt:
		return float64(v.I), true
	case TypeFloat:
		return v.F, true
	}
	return 0, false
}

// Compare orders two values: -1, 0 or +1. NULL orders before everything.
// Int and Float compare numerically against each other; other cross-type
// comparisons order by type tag (stable, arbitrary), mirroring the behaviour
// MCS relies on (it never compares across types except int/float).
func Compare(a, b Value) int {
	if a.T == TypeNull || b.T == TypeNull {
		switch {
		case a.T == b.T:
			return 0
		case a.T == TypeNull:
			return -1
		default:
			return 1
		}
	}
	if af, ok := a.numeric(); ok {
		if bf, ok := b.numeric(); ok {
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			}
			// Equal as floats; break ties so 1 and 1.0 stay equal but the
			// ordering over int64 beyond float precision remains sane.
			if a.T == TypeInt && b.T == TypeInt {
				switch {
				case a.I < b.I:
					return -1
				case a.I > b.I:
					return 1
				}
			}
			return 0
		}
	}
	if a.T != b.T {
		switch {
		case a.T < b.T:
			return -1
		default:
			return 1
		}
	}
	switch a.T {
	case TypeText:
		return strings.Compare(a.S, b.S)
	case TypeBool:
		switch {
		case a.B == b.B:
			return 0
		case !a.B:
			return -1
		default:
			return 1
		}
	case TypeTime:
		switch {
		case a.M.Before(b.M):
			return -1
		case a.M.After(b.M):
			return 1
		default:
			return 0
		}
	}
	return 0
}

// Equal reports whether a and b compare equal. NULL never equals anything,
// including NULL (SQL three-valued logic is applied by the evaluator; Equal
// is the raw tuple-identity used by indexes, where NULL == NULL).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// coerce converts v to column type t where a lossless conversion exists.
func coerce(v Value, t Type) (Value, error) {
	if v.T == TypeNull || v.T == t {
		return v, nil
	}
	switch t {
	case TypeFloat:
		if v.T == TypeInt {
			return Float(float64(v.I)), nil
		}
	case TypeInt:
		if v.T == TypeFloat && v.F == float64(int64(v.F)) {
			return Int(int64(v.F)), nil
		}
	case TypeTime:
		if v.T == TypeText {
			for _, layout := range []string{time.RFC3339, "2006-01-02 15:04:05", "2006-01-02"} {
				if m, err := time.Parse(layout, v.S); err == nil {
					return Time(m), nil
				}
			}
			return Value{}, fmt.Errorf("sqldb: cannot parse %q as DATETIME", v.S)
		}
	case TypeText:
		if v.T == TypeTime {
			return Text(v.M.Format(time.RFC3339)), nil
		}
	}
	return Value{}, fmt.Errorf("sqldb: cannot store %s value in %s column", v.T, t)
}
