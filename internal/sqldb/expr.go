package sqldb

import (
	"fmt"
	"strings"
)

// env resolves column references during expression evaluation. For
// single-table statements there is one binding; joins add one per table.
type env struct {
	bindings []binding
	params   []Value
}

type binding struct {
	alias string
	tbl   *table
	row   Row // nil for the unmatched side of a LEFT JOIN
}

func (e *env) lookup(ref *ColumnRef) (Value, error) {
	if ref.Table != "" {
		for i := range e.bindings {
			b := &e.bindings[i]
			if b.alias == ref.Table {
				p, err := b.tbl.columnPos(ref.Column)
				if err != nil {
					return Value{}, err
				}
				if b.row == nil {
					return Null(), nil
				}
				return b.row[p], nil
			}
		}
		return Value{}, fmt.Errorf("sqldb: unknown table alias %q", ref.Table)
	}
	// Unqualified: must be unambiguous across bindings.
	found := -1
	pos := 0
	for i := range e.bindings {
		if p, ok := e.bindings[i].tbl.colPos[ref.Column]; ok {
			if found >= 0 {
				return Value{}, fmt.Errorf("sqldb: ambiguous column %q", ref.Column)
			}
			found, pos = i, p
		}
	}
	if found < 0 {
		return Value{}, fmt.Errorf("sqldb: unknown column %q", ref.Column)
	}
	if e.bindings[found].row == nil {
		return Null(), nil
	}
	return e.bindings[found].row[pos], nil
}

// eval computes the value of expr under e.
//
// Comparison semantics: any comparison with a NULL operand is false (and its
// negation true only through IS NULL / NOT of the whole comparison). This is
// a documented simplification of SQL's three-valued logic; the MCS layer
// never relies on UNKNOWN propagation.
func eval(ex Expr, e *env) (Value, error) {
	switch x := ex.(type) {
	case *Literal:
		return x.Val, nil
	case *Param:
		if x.Index >= len(e.params) {
			return Value{}, fmt.Errorf("sqldb: statement has %d parameters, %d supplied",
				x.Index+1, len(e.params))
		}
		return e.params[x.Index], nil
	case *ColumnRef:
		return e.lookup(x)
	case *BinaryExpr:
		return evalBinary(x, e)
	case *UnaryExpr:
		v, err := eval(x.E, e)
		if err != nil {
			return Value{}, err
		}
		if x.Op == "NOT" {
			return Bool(!truthy(v)), nil
		}
		return Value{}, fmt.Errorf("sqldb: unknown unary operator %q", x.Op)
	case *InExpr:
		v, err := eval(x.E, e)
		if err != nil {
			return Value{}, err
		}
		hit := false
		for _, item := range x.List {
			iv, err := eval(item, e)
			if err != nil {
				return Value{}, err
			}
			if !v.IsNull() && !iv.IsNull() && Compare(v, iv) == 0 {
				hit = true
				break
			}
		}
		if x.Not {
			hit = !hit
		}
		return Bool(hit), nil
	case *IsNullExpr:
		v, err := eval(x.E, e)
		if err != nil {
			return Value{}, err
		}
		isNull := v.IsNull()
		if x.Not {
			isNull = !isNull
		}
		return Bool(isNull), nil
	}
	return Value{}, fmt.Errorf("sqldb: cannot evaluate expression %T", ex)
}

func evalBinary(x *BinaryExpr, e *env) (Value, error) {
	// Short-circuit logic operators.
	switch x.Op {
	case "AND":
		l, err := eval(x.L, e)
		if err != nil {
			return Value{}, err
		}
		if !truthy(l) {
			return Bool(false), nil
		}
		r, err := eval(x.R, e)
		if err != nil {
			return Value{}, err
		}
		return Bool(truthy(r)), nil
	case "OR":
		l, err := eval(x.L, e)
		if err != nil {
			return Value{}, err
		}
		if truthy(l) {
			return Bool(true), nil
		}
		r, err := eval(x.R, e)
		if err != nil {
			return Value{}, err
		}
		return Bool(truthy(r)), nil
	}
	l, err := eval(x.L, e)
	if err != nil {
		return Value{}, err
	}
	r, err := eval(x.R, e)
	if err != nil {
		return Value{}, err
	}
	if l.IsNull() || r.IsNull() {
		return Bool(false), nil
	}
	switch x.Op {
	case "=":
		return Bool(Compare(l, r) == 0), nil
	case "!=":
		return Bool(Compare(l, r) != 0), nil
	case "<":
		return Bool(Compare(l, r) < 0), nil
	case "<=":
		return Bool(Compare(l, r) <= 0), nil
	case ">":
		return Bool(Compare(l, r) > 0), nil
	case ">=":
		return Bool(Compare(l, r) >= 0), nil
	case "LIKE":
		if l.T != TypeText || r.T != TypeText {
			return Bool(false), nil
		}
		return Bool(likeMatch(r.S, l.S)), nil
	}
	return Value{}, fmt.Errorf("sqldb: unknown operator %q", x.Op)
}

// truthy reports whether v counts as true in a WHERE clause.
func truthy(v Value) bool {
	switch v.T {
	case TypeBool, TypeInt:
		return v.N != 0
	case TypeFloat:
		return v.Float() != 0
	default:
		return false
	}
}

// likeMatch implements SQL LIKE: % matches any run (including empty),
// _ matches exactly one byte. Matching is case-sensitive, as in MySQL
// with a binary collation.
func likeMatch(pattern, s string) bool {
	// Dynamic-programming two-pointer with backtracking on the last %.
	pi, si := 0, 0
	star, starSi := -1, 0
	for si < len(s) {
		if pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]) {
			pi++
			si++
			continue
		}
		if pi < len(pattern) && pattern[pi] == '%' {
			star = pi
			starSi = si
			pi++
			continue
		}
		if star >= 0 {
			pi = star + 1
			starSi++
			si = starSi
			continue
		}
		return false
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// conjuncts flattens nested ANDs into a list of predicates.
func conjuncts(ex Expr) []Expr {
	if b, ok := ex.(*BinaryExpr); ok && b.Op == "AND" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []Expr{ex}
}

// exprString renders an expression for error messages and EXPLAIN output.
func exprString(ex Expr) string {
	switch x := ex.(type) {
	case *Literal:
		if x.Val.T == TypeText {
			return "'" + strings.ReplaceAll(x.Val.S, "'", "''") + "'"
		}
		return x.Val.String()
	case *Param:
		return "?"
	case *ColumnRef:
		if x.Table != "" {
			return x.Table + "." + x.Column
		}
		return x.Column
	case *BinaryExpr:
		return "(" + exprString(x.L) + " " + x.Op + " " + exprString(x.R) + ")"
	case *UnaryExpr:
		return x.Op + " " + exprString(x.E)
	case *InExpr:
		items := make([]string, len(x.List))
		for i, it := range x.List {
			items[i] = exprString(it)
		}
		not := ""
		if x.Not {
			not = " NOT"
		}
		return exprString(x.E) + not + " IN (" + strings.Join(items, ", ") + ")"
	case *IsNullExpr:
		if x.Not {
			return exprString(x.E) + " IS NOT NULL"
		}
		return exprString(x.E) + " IS NULL"
	}
	return fmt.Sprintf("%T", ex)
}
