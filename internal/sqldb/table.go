package sqldb

import (
	"fmt"
	"math"
	"sort"

	"mcs/internal/btree"
)

// Row is one stored tuple, in table column order.
type Row []Value

func (r Row) clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// indexKey orders index entries by column values, then by rowid so that
// duplicate values coexist and each row has a unique entry. The first two
// columns — the full width of every index in practice — live inline, so
// building a key for an index insert, delete or probe allocates nothing;
// wider keys spill the remainder behind a pointer. The layout is tuned for
// bulk: index-tree nodes hold arrays of these, and every copy-on-write node
// copy moves them, so the spill slice is a pointer (8 B, nil in practice)
// rather than an inline slice header (24 B) and the column count is an
// int32 packed into the pointer's padding — 88 bytes per key instead of 104.
type indexKey struct {
	v0, v1 Value
	more   *[]Value // columns beyond the first two, nil when n <= 2
	rowid  int64
	n      int32
}

// col returns the i'th key column.
func (k *indexKey) col(i int) Value {
	switch i {
	case 0:
		return k.v0
	case 1:
		return k.v1
	default:
		return (*k.more)[i-2]
	}
}

// keyFromVals builds an indexKey from column values in order.
func keyFromVals(vals []Value, rowid int64) indexKey {
	k := indexKey{n: int32(len(vals)), rowid: rowid}
	for i, v := range vals {
		switch i {
		case 0:
			k.v0 = v
		case 1:
			k.v1 = v
		default:
			if k.more == nil {
				spill := make([]Value, 0, len(vals)-2)
				k.more = &spill
			}
			*k.more = append(*k.more, v)
		}
	}
	return k
}

func indexKeyLess(a, b indexKey) bool {
	n := int(a.n)
	if int(b.n) < n {
		n = int(b.n)
	}
	for i := 0; i < n; i++ {
		switch Compare(a.col(i), b.col(i)) {
		case -1:
			return true
		case 1:
			return false
		}
	}
	if a.n != b.n {
		return a.n < b.n
	}
	return a.rowid < b.rowid
}

// indexDegree is the btree fan-out for index trees. Indexes are the
// write-amplification hot spot — every row insert touches every index, and
// under MVCC each first touch of a node per transaction copies the whole
// node — so index trees trade depth for small nodes: at degree 8 a node
// holds ≤15 ~88-byte indexKeys (~1.3 KB per path-copy) versus ~9.9 KB at
// the default degree 32. The primary row store keeps the default fan-out:
// its int64 keys are cheap to copy and it is scanned far more than written.
const indexDegree = 8

// indexDelta is one deferred index mutation: an entry to set or delete.
type indexDelta struct {
	key indexKey
	del bool
}

// index is one secondary (or primary) index over a table.
//
// Mutations are not applied to the tree eagerly: insert and remove append
// to pending, and flush applies the whole batch sorted by key — so a
// transaction inserting many rows walks each index path once per leaf
// neighborhood instead of re-descending per row, and insert/delete pairs
// within one transaction (the replay-cache prune pattern) cancel without
// ever touching the tree. Readers of committed roots never see pending
// deltas: the transaction layer flushes before every index-backed scan and
// before publishing a root.
type index struct {
	name    string
	table   *table
	cols    []int // positions in the table's column list
	unique  bool
	tree    *btree.Tree[indexKey, struct{}]
	pending []indexDelta

	// stats holds the exact distinct counts the planner's statsRegistry
	// reads; flush maintains them incrementally (see stats.go).
	stats indexStats
}

func newIndex(name string, t *table, cols []int, unique bool) *index {
	return &index{
		name:   name,
		table:  t,
		cols:   cols,
		unique: unique,
		tree:   btree.NewDegree[indexKey, struct{}](indexDegree, indexKeyLess),
		stats:  indexStats{distinct: make([]int, len(cols))},
	}
}

func (ix *index) keyFor(rowid int64, row Row) indexKey {
	k := indexKey{n: int32(len(ix.cols)), rowid: rowid}
	for i, c := range ix.cols {
		switch i {
		case 0:
			k.v0 = row[c]
		case 1:
			k.v1 = row[c]
		default:
			if k.more == nil {
				spill := make([]Value, 0, len(ix.cols)-2)
				k.more = &spill
			}
			*k.more = append(*k.more, row[c])
		}
	}
	return k
}

// sameKeyCols reports whether a and b agree on all key columns (rowids may
// differ).
func sameKeyCols(a, b indexKey) bool {
	if a.n != b.n {
		return false
	}
	for i := 0; i < int(a.n); i++ {
		if Compare(a.col(i), b.col(i)) != 0 {
			return false
		}
	}
	return true
}

// pendingNet returns the latest pending operation for the exact entry
// (probe's key columns + rowid): +1 net-inserted, -1 net-deleted, 0 no
// pending op.
func (ix *index) pendingNet(probe indexKey, rowid int64) int {
	for i := len(ix.pending) - 1; i >= 0; i-- {
		d := &ix.pending[i]
		if d.key.rowid == rowid && sameKeyCols(d.key, probe) {
			if d.del {
				return -1
			}
			return 1
		}
	}
	return 0
}

// checkUnique reports a constraint violation if another row already holds
// the same full key values (NULLs exempt, as in SQL). It sees the net state
// of the index — the tree overlaid with this transaction's pending deltas —
// without forcing a flush.
func (ix *index) checkUnique(rowid int64, row Row) error {
	if !ix.unique {
		return nil
	}
	key := ix.keyFor(rowid, row)
	for i := 0; i < int(key.n); i++ {
		if key.col(i).IsNull() {
			return nil
		}
	}
	dup := false
	ix.scanEqualKey(key, func(other int64) bool {
		if other != rowid && ix.pendingNet(key, other) >= 0 {
			dup = true
			return false
		}
		return true
	})
	if !dup {
		// Entries inserted earlier in this transaction exist only in pending.
		for i := len(ix.pending) - 1; i >= 0; i-- {
			d := &ix.pending[i]
			if d.key.rowid == rowid || !sameKeyCols(d.key, key) {
				continue
			}
			// Only the latest pending op per entry decides its net state.
			if ix.pendingNet(key, d.key.rowid) > 0 {
				dup = true
				break
			}
		}
	}
	if dup {
		return fmt.Errorf("sqldb: UNIQUE constraint %q violated on table %q", ix.name, ix.table.name)
	}
	return nil
}

func (ix *index) insert(rowid int64, row Row) {
	ix.push(indexDelta{key: ix.keyFor(rowid, row)})
}

func (ix *index) remove(rowid int64, row Row) {
	ix.push(indexDelta{key: ix.keyFor(rowid, row), del: true})
}

func (ix *index) push(d indexDelta) {
	if ix.pending == nil {
		// Start with room for a typical transaction's worth of deltas; the
		// backing array is kept (zeroed) across flushes within a transaction.
		ix.pending = make([]indexDelta, 0, 16)
	}
	ix.pending = append(ix.pending, d)
}

// flush applies pending deltas to the tree. Deltas are sorted by key so the
// tree is walked leaf-by-leaf in order, and multiple ops on the same entry
// coalesce to the last one — an insert+delete pair in the same transaction
// never touches the tree at all.
//
// Because the batch is sorted, deltas touching the same key prefix are
// contiguous, which is what makes incremental distinct-count maintenance
// cheap: for every prefix length, each distinct prefix group in the batch
// pays at most two read-only tree probes — existence before its ops apply
// and after — to detect the 0↔N transitions that move the counts.
func (ix *index) flush() {
	p := ix.pending
	if len(p) == 0 {
		return
	}
	if len(p) > 1 {
		sort.SliceStable(p, func(i, j int) bool { return indexKeyLess(p[i].key, p[j].key) })
	}
	nc := len(ix.cols)
	// apply processes deltas p[lo:hi) that share their first lvl key
	// columns: group them by column lvl, bracket each group with existence
	// probes at prefix length lvl+1, and recurse. At the full key width it
	// applies the tree ops, coalescing multiple ops on one exact entry
	// (same key columns and rowid) to the last.
	var apply func(lo, hi, lvl int)
	apply = func(lo, hi, lvl int) {
		if lvl == nc {
			for k := lo; k < hi; {
				m := k + 1
				for m < hi && !indexKeyLess(p[k].key, p[m].key) {
					m++
				}
				if last := p[m-1]; last.del {
					ix.tree.Delete(last.key)
				} else {
					ix.tree.Set(last.key, struct{}{})
				}
				k = m
			}
			return
		}
		for i := lo; i < hi; {
			e := i + 1
			for e < hi && Compare(p[e].key.col(lvl), p[i].key.col(lvl)) == 0 {
				e++
			}
			pre := ix.hasPrefix(p[i].key, lvl+1)
			apply(i, e, lvl+1)
			post := ix.hasPrefix(p[i].key, lvl+1)
			if !pre && post {
				ix.stats.distinct[lvl]++
			} else if pre && !post {
				ix.stats.distinct[lvl]--
			}
			i = e
		}
	}
	apply(0, len(p), 0)
	// Keep the backing array for the next batch in this transaction, but
	// zero it so published roots don't pin dead keys.
	for i := range p {
		p[i] = indexDelta{}
	}
	ix.pending = p[:0]
}

// scanEqual calls fn with the rowid of every entry whose leading columns
// equal prefix, in index order, until fn returns false. The caller must
// have flushed pending deltas (the planner entry points do); the guard
// turns a missed flush point into a loud failure instead of silently
// missing rows.
func (ix *index) scanEqual(prefix []Value, fn func(rowid int64) bool) {
	if len(ix.pending) != 0 {
		panic("sqldb: index scan with unflushed deltas on " + ix.name)
	}
	ix.scanEqualKey(keyFromVals(prefix, math.MinInt64), fn)
}

// scanEqualKey is scanEqual with a prebuilt prefix key of start.n columns
// (start.rowid is overridden to scan from the first matching entry).
func (ix *index) scanEqualKey(start indexKey, fn func(rowid int64) bool) {
	start.rowid = math.MinInt64
	ix.tree.AscendGE(start, func(k indexKey, _ struct{}) bool {
		if !prefixEq(&k, &start) {
			return false
		}
		return fn(k.rowid)
	})
}

// prefixEq reports whether k's leading start.n columns all compare equal to
// start's. It is the per-entry termination test of every equality scan, so
// it reads the inline key fields directly (no col() copies) and compares
// with valuesEq's fast paths rather than the full comparator.
func prefixEq(k, start *indexKey) bool {
	n := int(start.n)
	if n > 0 && !valuesEq(&k.v0, &start.v0) {
		return false
	}
	if n > 1 && !valuesEq(&k.v1, &start.v1) {
		return false
	}
	for i := 2; i < n; i++ {
		if !valuesEq(&(*k.more)[i-2], &(*start.more)[i-2]) {
			return false
		}
	}
	return true
}

// scanEqualEntries is scanEqual exposing the whole index entry instead of
// just the rowid. Covered plans (see intersect.go) read join-key columns
// straight out of the entries, skipping the row fetch entirely.
func (ix *index) scanEqualEntries(prefix []Value, fn func(key indexKey) bool) {
	if len(ix.pending) != 0 {
		panic("sqldb: index scan with unflushed deltas on " + ix.name)
	}
	start := keyFromVals(prefix, math.MinInt64)
	ix.tree.AscendGE(start, func(k indexKey, _ struct{}) bool {
		if !prefixEq(&k, &start) {
			return false
		}
		return fn(k)
	})
}

// scanRange calls fn for entries whose first column lies in the interval
// described by lo/hi (nil means unbounded) with the given inclusivity.
func (ix *index) scanRange(lo, hi *Value, loInc, hiInc bool, fn func(rowid int64) bool) {
	ix.scanPrefixRange(nil, lo, hi, loInc, hiInc, fn)
}

// scanPrefixRange calls fn for entries whose leading columns equal prefix
// and whose next column lies in the interval described by lo/hi (nil means
// unbounded) with the given inclusivity. An empty prefix is a plain range
// scan on the first column.
func (ix *index) scanPrefixRange(prefix []Value, lo, hi *Value, loInc, hiInc bool, fn func(rowid int64) bool) {
	if len(ix.pending) != 0 {
		panic("sqldb: index scan with unflushed deltas on " + ix.name)
	}
	rc := len(prefix)
	visit := func(k indexKey, _ struct{}) bool {
		for i := 0; i < rc; i++ {
			if Compare(k.col(i), prefix[i]) != 0 {
				return false
			}
		}
		v := k.col(rc)
		if lo != nil {
			c := Compare(v, *lo)
			if c < 0 || (c == 0 && !loInc) {
				return true // before range; keep going (only when starting unbounded)
			}
		}
		if hi != nil {
			c := Compare(v, *hi)
			if c > 0 || (c == 0 && !hiInc) {
				return false
			}
		}
		return fn(k.rowid)
	}
	switch {
	case lo != nil:
		vals := make([]Value, rc+1)
		copy(vals, prefix)
		vals[rc] = *lo
		ix.tree.AscendGE(keyFromVals(vals, math.MinInt64), visit)
	case rc > 0:
		ix.tree.AscendGE(keyFromVals(prefix, math.MinInt64), visit)
	default:
		ix.tree.Ascend(visit)
	}
}

// rowidLess orders the primary row store by rowid.
func rowidLess(a, b int64) bool { return a < b }

// table is the storage for one table: rows keyed by rowid plus its indexes.
// Under MVCC a table version reachable from a committed root is immutable;
// writers work on clones (see clone).
type table struct {
	name    string
	cols    []ColumnDef
	colPos  map[string]int
	rows    *btree.Tree[int64, Row]
	indexes []*index
	nextRow int64
	autoInc int64
}

func newTable(st *CreateTableStmt) (*table, error) {
	t := &table{
		name:   st.Name,
		cols:   st.Columns,
		colPos: make(map[string]int, len(st.Columns)),
		rows:   btree.New[int64, Row](rowidLess),
	}
	for i, c := range st.Columns {
		if _, dup := t.colPos[c.Name]; dup {
			return nil, fmt.Errorf("sqldb: duplicate column %q in table %q", c.Name, st.Name)
		}
		t.colPos[c.Name] = i
	}
	for i, c := range st.Columns {
		if c.PrimaryKey || c.Unique {
			t.indexes = append(t.indexes,
				newIndex(fmt.Sprintf("%s_%s_key", st.Name, c.Name), t, []int{i}, true))
		}
	}
	return t, nil
}

// clone returns a shadow version of the table for a writer: row and index
// trees are O(1) copy-on-write clones sharing nodes with the original, and
// the index slice is copied so DDL on the clone leaves the original intact.
// Column metadata is shared — it is immutable after creation.
func (t *table) clone() *table {
	nt := &table{
		name:    t.name,
		cols:    t.cols,
		colPos:  t.colPos,
		rows:    t.rows.Clone(),
		nextRow: t.nextRow,
		autoInc: t.autoInc,
	}
	nt.indexes = make([]*index, len(t.indexes))
	for i, ix := range t.indexes {
		// Committed roots are always flushed (the transaction layer flushes
		// before publishing), so the clone starts with no pending deltas.
		nt.indexes[i] = &index{
			name:   ix.name,
			table:  nt,
			cols:   ix.cols,
			unique: ix.unique,
			tree:   ix.tree.Clone(),
			stats:  ix.stats.clone(),
		}
	}
	return nt
}

// flushIndexes applies every index's pending deltas. The transaction layer
// calls it before any index-backed scan and before a commit publishes the
// table.
func (t *table) flushIndexes() {
	for _, ix := range t.indexes {
		ix.flush()
	}
}

// columnPos resolves a column name to its position.
func (t *table) columnPos(name string) (int, error) {
	if p, ok := t.colPos[name]; ok {
		return p, nil
	}
	return 0, fmt.Errorf("sqldb: no column %q in table %q", name, t.name)
}

// completeRow finalizes a full-width row in place, applying autoincrement,
// NOT NULL checks and type coercion. Callers fill the row's known columns
// and leave the rest NULL (the Value zero value).
func (t *table) completeRow(row Row) error {
	for i, c := range t.cols {
		if row[i].IsNull() && c.AutoIncrement {
			t.autoInc++
			row[i] = Int(t.autoInc)
			continue
		}
		if row[i].IsNull() {
			if c.NotNull {
				return fmt.Errorf("sqldb: NOT NULL constraint on %s.%s", t.name, c.Name)
			}
			continue
		}
		cv, err := coerce(row[i], c.Type)
		if err != nil {
			return fmt.Errorf("%w (column %s.%s)", err, t.name, c.Name)
		}
		if cv.T == TypeText {
			// Stored text skews to a small repeated vocabulary (attribute
			// names, type tags, DNs); share one copy per distinct value.
			cv.S = Intern(cv.S)
		}
		row[i] = cv
		if c.AutoIncrement && cv.Int() > t.autoInc {
			t.autoInc = cv.Int()
		}
	}
	return nil
}

// insert stores row and updates indexes, returning the new rowid.
func (t *table) insert(row Row) (int64, error) {
	t.nextRow++
	rowid := t.nextRow
	for _, ix := range t.indexes {
		if err := ix.checkUnique(rowid, row); err != nil {
			t.nextRow--
			return 0, err
		}
	}
	t.rows.Set(rowid, row)
	for _, ix := range t.indexes {
		ix.insert(rowid, row)
	}
	return rowid, nil
}

// delete removes rowid, returning the removed row.
func (t *table) delete(rowid int64) (Row, bool) {
	row, ok := t.rows.Get(rowid)
	if !ok {
		return nil, false
	}
	for _, ix := range t.indexes {
		ix.remove(rowid, row)
	}
	t.rows.Delete(rowid)
	return row, true
}

// update replaces the row at rowid, returning the previous row.
func (t *table) update(rowid int64, newRow Row) (Row, error) {
	old, ok := t.rows.Get(rowid)
	if !ok {
		return nil, fmt.Errorf("sqldb: update of missing rowid %d in %q", rowid, t.name)
	}
	for _, ix := range t.indexes {
		ix.remove(rowid, old)
	}
	for _, ix := range t.indexes {
		if err := ix.checkUnique(rowid, newRow); err != nil {
			for _, ix2 := range t.indexes {
				ix2.insert(rowid, old)
			}
			return nil, err
		}
	}
	t.rows.Set(rowid, newRow)
	for _, ix := range t.indexes {
		ix.insert(rowid, newRow)
	}
	return old, nil
}

// findIndex returns an index whose leading columns match cols exactly in
// order, preferring the shortest such index.
func (t *table) findIndex(cols []int) *index {
	var best *index
	for _, ix := range t.indexes {
		if len(ix.cols) < len(cols) {
			continue
		}
		match := true
		for i, c := range cols {
			if ix.cols[i] != c {
				match = false
				break
			}
		}
		if match && (best == nil || len(ix.cols) < len(best.cols)) {
			best = ix
		}
	}
	return best
}
