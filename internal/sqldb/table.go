package sqldb

import (
	"fmt"
	"math"

	"mcs/internal/btree"
)

// Row is one stored tuple, in table column order.
type Row []Value

func (r Row) clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// indexKey orders index entries by column values, then by rowid so that
// duplicate values coexist and each row has a unique entry. The first two
// columns — the full width of every index in practice — live inline, so
// building a key for an index insert, delete or probe allocates nothing;
// wider keys spill the remainder into a slice.
type indexKey struct {
	v0, v1 Value
	more   []Value // columns beyond the first two
	n      int
	rowid  int64
}

// col returns the i'th key column.
func (k *indexKey) col(i int) Value {
	switch i {
	case 0:
		return k.v0
	case 1:
		return k.v1
	default:
		return k.more[i-2]
	}
}

// keyFromVals builds an indexKey from column values in order.
func keyFromVals(vals []Value, rowid int64) indexKey {
	k := indexKey{n: len(vals), rowid: rowid}
	for i, v := range vals {
		switch i {
		case 0:
			k.v0 = v
		case 1:
			k.v1 = v
		default:
			k.more = append(k.more, v)
		}
	}
	return k
}

func indexKeyLess(a, b indexKey) bool {
	n := a.n
	if b.n < n {
		n = b.n
	}
	for i := 0; i < n; i++ {
		switch Compare(a.col(i), b.col(i)) {
		case -1:
			return true
		case 1:
			return false
		}
	}
	if a.n != b.n {
		return a.n < b.n
	}
	return a.rowid < b.rowid
}

// index is one secondary (or primary) index over a table.
type index struct {
	name   string
	table  *table
	cols   []int // positions in the table's column list
	unique bool
	tree   *btree.Tree[indexKey, struct{}]
}

func newIndex(name string, t *table, cols []int, unique bool) *index {
	return &index{
		name:   name,
		table:  t,
		cols:   cols,
		unique: unique,
		tree:   btree.New[indexKey, struct{}](indexKeyLess),
	}
}

func (ix *index) keyFor(rowid int64, row Row) indexKey {
	k := indexKey{n: len(ix.cols), rowid: rowid}
	for i, c := range ix.cols {
		switch i {
		case 0:
			k.v0 = row[c]
		case 1:
			k.v1 = row[c]
		default:
			k.more = append(k.more, row[c])
		}
	}
	return k
}

// checkUnique reports a constraint violation if another row already holds
// the same full key values (NULLs exempt, as in SQL).
func (ix *index) checkUnique(rowid int64, row Row) error {
	if !ix.unique {
		return nil
	}
	key := ix.keyFor(rowid, row)
	for i := 0; i < key.n; i++ {
		if key.col(i).IsNull() {
			return nil
		}
	}
	dup := false
	ix.scanEqualKey(key, func(other int64) bool {
		if other != rowid {
			dup = true
			return false
		}
		return true
	})
	if dup {
		return fmt.Errorf("sqldb: UNIQUE constraint %q violated on table %q", ix.name, ix.table.name)
	}
	return nil
}

func (ix *index) insert(rowid int64, row Row) {
	ix.tree.Set(ix.keyFor(rowid, row), struct{}{})
}

func (ix *index) remove(rowid int64, row Row) {
	ix.tree.Delete(ix.keyFor(rowid, row))
}

// scanEqual calls fn with the rowid of every entry whose leading columns
// equal prefix, in index order, until fn returns false.
func (ix *index) scanEqual(prefix []Value, fn func(rowid int64) bool) {
	ix.scanEqualKey(keyFromVals(prefix, math.MinInt64), fn)
}

// scanEqualKey is scanEqual with a prebuilt prefix key of start.n columns
// (start.rowid is overridden to scan from the first matching entry).
func (ix *index) scanEqualKey(start indexKey, fn func(rowid int64) bool) {
	start.rowid = math.MinInt64
	ix.tree.AscendGE(start, func(k indexKey, _ struct{}) bool {
		for i := 0; i < start.n; i++ {
			if Compare(k.col(i), start.col(i)) != 0 {
				return false
			}
		}
		return fn(k.rowid)
	})
}

// scanRange calls fn for entries whose first column lies in the interval
// described by lo/hi (nil means unbounded) with the given inclusivity.
func (ix *index) scanRange(lo, hi *Value, loInc, hiInc bool, fn func(rowid int64) bool) {
	visit := func(k indexKey, _ struct{}) bool {
		v := k.v0
		if lo != nil {
			c := Compare(v, *lo)
			if c < 0 || (c == 0 && !loInc) {
				return true // before range; keep going (only when starting unbounded)
			}
		}
		if hi != nil {
			c := Compare(v, *hi)
			if c > 0 || (c == 0 && !hiInc) {
				return false
			}
		}
		return fn(k.rowid)
	}
	if lo != nil {
		ix.tree.AscendGE(indexKey{v0: *lo, n: 1, rowid: math.MinInt64}, visit)
	} else {
		ix.tree.Ascend(visit)
	}
}

// rowidLess orders the primary row store by rowid.
func rowidLess(a, b int64) bool { return a < b }

// table is the storage for one table: rows keyed by rowid plus its indexes.
// Under MVCC a table version reachable from a committed root is immutable;
// writers work on clones (see clone).
type table struct {
	name    string
	cols    []ColumnDef
	colPos  map[string]int
	rows    *btree.Tree[int64, Row]
	indexes []*index
	nextRow int64
	autoInc int64
}

func newTable(st *CreateTableStmt) (*table, error) {
	t := &table{
		name:   st.Name,
		cols:   st.Columns,
		colPos: make(map[string]int, len(st.Columns)),
		rows:   btree.New[int64, Row](rowidLess),
	}
	for i, c := range st.Columns {
		if _, dup := t.colPos[c.Name]; dup {
			return nil, fmt.Errorf("sqldb: duplicate column %q in table %q", c.Name, st.Name)
		}
		t.colPos[c.Name] = i
	}
	for i, c := range st.Columns {
		if c.PrimaryKey || c.Unique {
			t.indexes = append(t.indexes,
				newIndex(fmt.Sprintf("%s_%s_key", st.Name, c.Name), t, []int{i}, true))
		}
	}
	return t, nil
}

// clone returns a shadow version of the table for a writer: row and index
// trees are O(1) copy-on-write clones sharing nodes with the original, and
// the index slice is copied so DDL on the clone leaves the original intact.
// Column metadata is shared — it is immutable after creation.
func (t *table) clone() *table {
	nt := &table{
		name:    t.name,
		cols:    t.cols,
		colPos:  t.colPos,
		rows:    t.rows.Clone(),
		nextRow: t.nextRow,
		autoInc: t.autoInc,
	}
	nt.indexes = make([]*index, len(t.indexes))
	for i, ix := range t.indexes {
		nt.indexes[i] = &index{
			name:   ix.name,
			table:  nt,
			cols:   ix.cols,
			unique: ix.unique,
			tree:   ix.tree.Clone(),
		}
	}
	return nt
}

// columnPos resolves a column name to its position.
func (t *table) columnPos(name string) (int, error) {
	if p, ok := t.colPos[name]; ok {
		return p, nil
	}
	return 0, fmt.Errorf("sqldb: no column %q in table %q", name, t.name)
}

// completeRow finalizes a full-width row in place, applying autoincrement,
// NOT NULL checks and type coercion. Callers fill the row's known columns
// and leave the rest NULL (the Value zero value).
func (t *table) completeRow(row Row) error {
	for i, c := range t.cols {
		if row[i].IsNull() && c.AutoIncrement {
			t.autoInc++
			row[i] = Int(t.autoInc)
			continue
		}
		if row[i].IsNull() {
			if c.NotNull {
				return fmt.Errorf("sqldb: NOT NULL constraint on %s.%s", t.name, c.Name)
			}
			continue
		}
		cv, err := coerce(row[i], c.Type)
		if err != nil {
			return fmt.Errorf("%w (column %s.%s)", err, t.name, c.Name)
		}
		row[i] = cv
		if c.AutoIncrement && cv.I > t.autoInc {
			t.autoInc = cv.I
		}
	}
	return nil
}

// insert stores row and updates indexes, returning the new rowid.
func (t *table) insert(row Row) (int64, error) {
	t.nextRow++
	rowid := t.nextRow
	for _, ix := range t.indexes {
		if err := ix.checkUnique(rowid, row); err != nil {
			t.nextRow--
			return 0, err
		}
	}
	t.rows.Set(rowid, row)
	for _, ix := range t.indexes {
		ix.insert(rowid, row)
	}
	return rowid, nil
}

// delete removes rowid, returning the removed row.
func (t *table) delete(rowid int64) (Row, bool) {
	row, ok := t.rows.Get(rowid)
	if !ok {
		return nil, false
	}
	for _, ix := range t.indexes {
		ix.remove(rowid, row)
	}
	t.rows.Delete(rowid)
	return row, true
}

// update replaces the row at rowid, returning the previous row.
func (t *table) update(rowid int64, newRow Row) (Row, error) {
	old, ok := t.rows.Get(rowid)
	if !ok {
		return nil, fmt.Errorf("sqldb: update of missing rowid %d in %q", rowid, t.name)
	}
	for _, ix := range t.indexes {
		ix.remove(rowid, old)
	}
	for _, ix := range t.indexes {
		if err := ix.checkUnique(rowid, newRow); err != nil {
			for _, ix2 := range t.indexes {
				ix2.insert(rowid, old)
			}
			return nil, err
		}
	}
	t.rows.Set(rowid, newRow)
	for _, ix := range t.indexes {
		ix.insert(rowid, newRow)
	}
	return old, nil
}

// findIndex returns an index whose leading columns match cols exactly in
// order, preferring the shortest such index.
func (t *table) findIndex(cols []int) *index {
	var best *index
	for _, ix := range t.indexes {
		if len(ix.cols) < len(cols) {
			continue
		}
		match := true
		for i, c := range cols {
			if ix.cols[i] != c {
				match = false
				break
			}
		}
		if match && (best == nil || len(ix.cols) < len(best.cols)) {
			best = ix
		}
	}
	return best
}
