package sqldb

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCompareNumericCrossType(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(1), Float(1.0), 0},
		{Int(1), Float(1.5), -1},
		{Float(2.5), Int(2), 1},
		{Text("a"), Text("b"), -1},
		{Text("b"), Text("b"), 0},
		{Bool(false), Bool(true), -1},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Null(), Null(), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareTime(t *testing.T) {
	t1 := Time(time.Date(2003, 1, 1, 0, 0, 0, 0, time.UTC))
	t2 := Time(time.Date(2003, 6, 1, 0, 0, 0, 0, time.UTC))
	if Compare(t1, t2) != -1 || Compare(t2, t1) != 1 || Compare(t1, t1) != 0 {
		t.Fatal("time comparison broken")
	}
}

func TestTimeTruncation(t *testing.T) {
	v := Time(time.Date(2003, 1, 1, 12, 0, 0, 999999999, time.UTC))
	if v.Time().Nanosecond() != 0 {
		t.Fatal("Time() did not truncate to seconds")
	}
}

// Property: Compare is antisymmetric and reflexive over ints and floats.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int32, fa, fb float32) bool {
		va, vb := Int(int64(a)), Float(float64(fb))
		_ = fa
		_ = b
		return Compare(va, vb) == -Compare(vb, va) && Compare(va, va) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL":  Null(),
		"42":    Int(42),
		"2.5":   Float(2.5),
		"hello": Text("hello"),
		"TRUE":  Bool(true),
		"FALSE": Bool(false),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", v, got, want)
		}
	}
}

func TestCoerce(t *testing.T) {
	if v, err := coerce(Int(3), TypeFloat); err != nil || v.Float() != 3 {
		t.Fatalf("int->float: %v %v", v, err)
	}
	if v, err := coerce(Float(3.0), TypeInt); err != nil || v.Int() != 3 {
		t.Fatalf("float->int exact: %v %v", v, err)
	}
	if _, err := coerce(Float(3.5), TypeInt); err == nil {
		t.Fatal("lossy float->int did not fail")
	}
	if _, err := coerce(Text("x"), TypeInt); err == nil {
		t.Fatal("text->int did not fail")
	}
	if v, err := coerce(Text("2003-11-15"), TypeTime); err != nil || v.Time().Day() != 15 {
		t.Fatalf("date parse: %v %v", v, err)
	}
	if v, err := coerce(Null(), TypeText); err != nil || !v.IsNull() {
		t.Fatalf("null passthrough: %v %v", v, err)
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"a%", "abc", true},
		{"%c", "abc", true},
		{"%b%", "abc", true},
		{"a_c", "abc", true},
		{"a_c", "abbc", false},
		{"%", "", true},
		{"%", "anything", true},
		{"_", "", false},
		{"_", "x", true},
		{"a%b%c", "axxbyyc", true},
		{"a%b%c", "acb", false},
		{"%%", "x", true},
		{"", "", true},
		{"", "x", false},
		{"h-2%", "h-2-pulsar.gwf", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.pattern, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

// Property: a pattern equal to the string (no wildcards) always matches.
func TestQuickLikeExact(t *testing.T) {
	f := func(s string) bool {
		for _, r := range s {
			if r == '%' || r == '_' {
				return true // skip wildcard-bearing inputs
			}
		}
		return likeMatch(s, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: "%"+s+"%" matches any string containing s.
func TestQuickLikeContains(t *testing.T) {
	f := func(prefix, mid, suffix string) bool {
		for _, r := range mid {
			if r == '%' || r == '_' {
				return true
			}
		}
		return likeMatch("%"+mid+"%", prefix+mid+suffix)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
