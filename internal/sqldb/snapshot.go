package sqldb

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"maps"
	"sort"
	"time"

	"mcs/internal/btree"
)

// Snapshots give the in-memory engine the durability of the MySQL backend
// it replaces: Dump serializes every table definition, secondary index
// definition and row to a stream; Load rebuilds a database from one.
// The format is versioned gob, written from a pinned immutable MVCC root,
// so dumping never blocks (or is blocked by) concurrent traffic.

// snapshotVersion guards format evolution. Version 1 serialized the old
// wide Value (separate I/F/S/B/Unix fields per cell); version 2 writes the
// compact tagged-union form (N carries int/float-bits/bool/unix-micros).
// Loading accepts both: gob matches fields by name and zero-fills absences,
// so the one gobValue struct below decodes either generation and fromGob
// picks the populated representation per the stream version.
const snapshotVersion = 2

// legacySnapshotVersion is the oldest stream generation LoadSnapshot accepts.
const legacySnapshotVersion = 1

// gobValue is the wire form of a Value. Version 2 streams populate T, N and
// S only; the I/F/B/Unix fields exist so the same struct decodes version 1
// streams (gob omits zero-valued fields on encode, so they cost nothing on
// the write side).
type gobValue struct {
	T Type
	N int64
	S string

	// Version 1 layout, decode-only.
	I    int64
	F    float64
	B    bool
	Unix int64 // seconds; valid when T == TypeTime
}

func toGob(v Value) gobValue {
	return gobValue{T: v.T, N: v.N, S: v.S}
}

// fromGob rebuilds a Value from either stream generation. Text is interned:
// a snapshot of a million rows repeats the same attribute names and type
// tags a million times, and this is the one place every stored string
// passes through at boot.
func fromGob(g gobValue, version int) Value {
	if version >= 2 {
		v := Value{T: g.T, N: g.N, S: g.S}
		if v.T == TypeText {
			v.S = Intern(v.S)
		}
		return v
	}
	switch g.T {
	case TypeInt:
		return Int(g.I)
	case TypeFloat:
		return Float(g.F)
	case TypeText:
		return Text(Intern(g.S))
	case TypeBool:
		return Bool(g.B)
	case TypeTime:
		return Time(time.Unix(g.Unix, 0).UTC())
	}
	return Null()
}

// gobIndex describes one secondary index.
type gobIndex struct {
	Name   string
	Cols   []int
	Unique bool
}

// gobTable carries one table's definition and contents.
type gobTable struct {
	Name    string
	Cols    []ColumnDef
	Indexes []gobIndex
	NextRow int64
	AutoInc int64
	RowIDs  []int64
	Rows    [][]gobValue
}

// gobSnapshot is the full stream payload. LSN is the write-ahead-log
// sequence number of the pinned root: recovery replays only log records
// above it. The field is additive — gob decodes pre-WAL snapshots to LSN 0
// (replay everything) and old readers ignore it — so the version stays 1.
type gobSnapshot struct {
	Version int
	LSN     uint64
	Tables  []gobTable
}

// Dump writes a consistent snapshot of the database to w. It pins the
// current committed root with one atomic load and serializes from that
// immutable version, so a dump of any size never blocks writers (or is
// affected by them): commits that land mid-dump simply produce newer roots
// this dump does not see.
func (db *DB) Dump(w io.Writer) error {
	root := db.root.Load()
	snap := gobSnapshot{Version: snapshotVersion, LSN: root.lsn}
	names := make([]string, 0, len(root.tables))
	for n := range root.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		t := root.tables[name]
		gt := gobTable{
			Name:    t.name,
			Cols:    t.cols,
			NextRow: t.nextRow,
			AutoInc: t.autoInc,
		}
		for _, ix := range t.indexes {
			gt.Indexes = append(gt.Indexes, gobIndex{Name: ix.name, Cols: ix.cols, Unique: ix.unique})
		}
		gt.RowIDs = make([]int64, 0, t.rows.Len())
		gt.Rows = make([][]gobValue, 0, t.rows.Len())
		t.rows.Ascend(func(rowid int64, row Row) bool {
			gt.RowIDs = append(gt.RowIDs, rowid)
			gr := make([]gobValue, len(row))
			for c, v := range row {
				gr[c] = toGob(v)
			}
			gt.Rows = append(gt.Rows, gr)
			return true
		})
		snap.Tables = append(snap.Tables, gt)
	}
	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(&snap); err != nil {
		return fmt.Errorf("sqldb: encode snapshot: %w", err)
	}
	return bw.Flush()
}

// LoadSnapshot rebuilds a database from a Dump stream. It must be called on
// a database whose tables do not collide with the snapshot's (typically a
// fresh one); indexes are rebuilt from the rows.
func (db *DB) LoadSnapshot(r io.Reader) error {
	var snap gobSnapshot
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&snap); err != nil {
		return fmt.Errorf("sqldb: decode snapshot: %w", err)
	}
	if snap.Version < legacySnapshotVersion || snap.Version > snapshotVersion {
		return fmt.Errorf("sqldb: snapshot version %d, want %d..%d",
			snap.Version, legacySnapshotVersion, snapshotVersion)
	}
	db.wmu.Lock()
	defer db.wmu.Unlock()
	base := db.root.Load()
	work := &dbRoot{
		epoch:   base.epoch + 1,
		lsn:     max(base.lsn, snap.LSN),
		tables:  maps.Clone(base.tables),
		indexes: maps.Clone(base.indexes),
	}
	for _, gt := range snap.Tables {
		if _, exists := work.tables[gt.Name]; exists {
			return fmt.Errorf("sqldb: snapshot table %q already exists", gt.Name)
		}
	}
	for _, gt := range snap.Tables {
		t := &table{
			name:    gt.Name,
			cols:    gt.Cols,
			colPos:  make(map[string]int, len(gt.Cols)),
			rows:    btree.New[int64, Row](rowidLess),
			nextRow: gt.NextRow,
			autoInc: gt.AutoInc,
		}
		for i, c := range gt.Cols {
			t.colPos[c.Name] = i
		}
		for _, gi := range gt.Indexes {
			for _, c := range gi.Cols {
				if c < 0 || c >= len(gt.Cols) {
					return fmt.Errorf("sqldb: snapshot index %q references column %d of %q",
						gi.Name, c, gt.Name)
				}
			}
			ix := newIndex(gi.Name, t, gi.Cols, gi.Unique)
			t.indexes = append(t.indexes, ix)
			work.indexes[gi.Name] = ix
		}
		for i, rowid := range gt.RowIDs {
			gr := gt.Rows[i]
			if len(gr) != len(gt.Cols) {
				return fmt.Errorf("sqldb: snapshot row width %d in table %q with %d columns",
					len(gr), gt.Name, len(gt.Cols))
			}
			row := make(Row, len(gr))
			for c, gv := range gr {
				row[c] = fromGob(gv, snap.Version)
			}
			t.rows.Set(rowid, row)
			// Write index trees directly; the pending-delta path exists to
			// batch transactional writes and would only buffer the whole
			// table here.
			for _, ix := range t.indexes {
				ix.tree.Set(ix.keyFor(rowid, row), struct{}{})
			}
		}
		// Direct tree writes bypassed the stat-maintaining flush; rebuild
		// the planner's cardinality counts with one walk per index.
		for _, ix := range t.indexes {
			ix.recomputeStats()
		}
		work.tables[gt.Name] = t
	}
	// Publish the rebuilt state atomically; an error above leaves the
	// previous root untouched (the partially built work root is discarded).
	db.root.Store(work)
	return nil
}
