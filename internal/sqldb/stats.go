package sqldb

import "math"

// Cardinality statistics for the cost-based planner.
//
// Every index carries exact distinct-prefix counts — for each prefix length
// k, how many distinct k-column key prefixes its tree holds — maintained
// incrementally as pending deltas are flushed (see index.flush): the flush
// batch is already sorted by key, so each distinct prefix group in the
// batch costs at most two read-only tree probes (one before the group's ops
// apply, one after) to detect a 0→N or N→0 transition. Row counts come
// from the trees' own lengths. Paths that build index trees directly —
// CREATE INDEX backfill and snapshot restore — recompute the counts with
// one ordered walk.
//
// The planner never reads these fields (or the trees) directly: it consults
// a statsRegistry snapshot taken at compile time, mirroring the
// go-mysql-server Catalog/IndexRegistry split. Because compiled plans are
// cached per MVCC epoch, stats are consulted once per (statement, epoch),
// not per execution.

// indexStats is the per-index cardinality summary: distinct[k-1] counts the
// distinct k-column key prefixes in the tree, for every prefix length up to
// the index width.
type indexStats struct {
	distinct []int
}

// clone deep-copies the counts; index clones must not share the slice with
// their immutable parent, whose published root may still be read.
func (s indexStats) clone() indexStats {
	return indexStats{distinct: append([]int(nil), s.distinct...)}
}

// distinctCounts computes the distinct-prefix counts from scratch with one
// ordered tree walk. recomputeStats installs the result; the stats property
// tests also use it directly as the ground truth the incremental flush
// maintenance must agree with.
func (ix *index) distinctCounts() []int {
	nc := len(ix.cols)
	d := make([]int, nc)
	var prev indexKey
	first := true
	ix.tree.Ascend(func(k indexKey, _ struct{}) bool {
		// diff is the first key column where k departs from prev; prefixes
		// longer than diff columns are new.
		diff := 0
		if !first {
			diff = nc
			for i := 0; i < nc; i++ {
				if Compare(k.col(i), prev.col(i)) != 0 {
					diff = i
					break
				}
			}
		}
		for i := diff; i < nc; i++ {
			d[i]++
		}
		prev, first = k, false
		return true
	})
	return d
}

// recomputeStats rebuilds the distinct-prefix counts. Used by the paths
// that bypass the pending-delta flush (CREATE INDEX backfill, snapshot
// restore); incremental maintenance during flush keeps the counts exact
// everywhere else.
func (ix *index) recomputeStats() {
	ix.stats = indexStats{distinct: ix.distinctCounts()}
}

// hasPrefix reports whether the tree holds at least one entry whose first n
// key columns equal key's. It is a single read-only descent; flush uses it
// to detect distinct-count transitions around each delta group.
func (ix *index) hasPrefix(key indexKey, n int) bool {
	probe := indexKey{v0: key.v0, n: int32(n), rowid: math.MinInt64}
	if n > 1 {
		probe.v1 = key.v1
	}
	if n > 2 {
		probe.more = key.more
	}
	found := false
	ix.tree.AscendGE(probe, func(k indexKey, _ struct{}) bool {
		found = true
		for i := 0; i < n; i++ {
			if Compare(k.col(i), probe.col(i)) != 0 {
				found = false
				break
			}
		}
		return false
	})
	return found
}

// statsRegistry is the planner's read-only window onto cardinality data.
// Planning code asks it — never the tables or trees — for row counts and
// selectivity estimates, so the boundary between "what the data looks like"
// and "how to access it" stays explicit and testable. The registry reads
// the live fields of one immutable root's tables, which is safe because a
// published root is never mutated.
type statsRegistry struct{}

// tableRows returns the row count of t.
func (statsRegistry) tableRows(t *table) float64 { return float64(t.rows.Len()) }

// distinct returns the exact number of distinct k-column prefixes in ix.
func (statsRegistry) distinct(ix *index, k int) float64 {
	d := ix.stats.distinct
	switch {
	case k <= 0 || len(d) == 0:
		return 1
	case k <= len(d):
		return float64(d[k-1])
	default:
		return float64(d[len(d)-1])
	}
}

// eqRows estimates how many rows one equality probe on the leading k
// columns of ix returns.
func (s statsRegistry) eqRows(ix *index, k int) float64 {
	n := float64(ix.tree.Len())
	if n == 0 {
		return 0
	}
	d := s.distinct(ix, k)
	if d < 1 {
		d = 1
	}
	return n / d
}
