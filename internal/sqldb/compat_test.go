package sqldb

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestMonotonicClockStrippedAtIngest is the regression test for the add-path
// bug this PR sweeps out: a DATETIME built from time.Now() used to carry the
// monotonic clock reading into the stored row, so the same logical timestamp
// read back after a crash + WAL replay compared unequal to the one the
// process committed (replay rebuilds the value from the wire, which never had
// a monotonic part). The compact Value stores a unix offset only, so the
// stored cell must be ==-equal before and after recovery.
func TestMonotonicClockStrippedAtIngest(t *testing.T) {
	now := time.Now() // carries a monotonic reading
	if now.Round(0).Format(time.RFC3339Nano) != now.Format(time.RFC3339Nano) {
		t.Fatal("sanity: Round(0) changed the wall reading")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "state.wal")

	db := New()
	mustExec(t, db, "CREATE TABLE ev (id INTEGER NOT NULL, at DATETIME NOT NULL)")
	w, _ := openTestWAL(t, path, db, WALOptions{})
	mustExec(t, db, "INSERT INTO ev (id, at) VALUES (?, ?)", Int(1), Time(now))

	rows := mustQuery(t, db, "SELECT at FROM ev WHERE id = 1")
	stored := rows.Data[0][0]
	// The stored value must already be monotonic-free and comparable.
	if want := Time(now); stored != want {
		t.Fatalf("stored value %#v != re-ingested value %#v", stored, want)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Crash-restart: fresh engine, same DDL, replay the log.
	db2 := New()
	mustExec(t, db2, "CREATE TABLE ev (id INTEGER NOT NULL, at DATETIME NOT NULL)")
	w2, stats := openTestWAL(t, path, db2, WALOptions{})
	defer w2.Close()
	if stats.Applied != 1 {
		t.Fatalf("replay stats = %+v, want 1 applied", stats)
	}
	rows = mustQuery(t, db2, "SELECT at FROM ev WHERE id = 1")
	replayed := rows.Data[0][0]
	if replayed != stored {
		t.Fatalf("replayed value %#v != committed value %#v", replayed, stored)
	}
	if !replayed.Time().Equal(now.Truncate(time.Second)) {
		t.Fatalf("replayed time %v != %v", replayed.Time(), now.Truncate(time.Second))
	}
}

// Legacy (version 1) snapshot wire structs, as written before the Value
// compaction. gob matches struct fields by name, so these local mirrors
// produce byte streams indistinguishable from what the old code emitted.
type legacyV1Value struct {
	T    Type
	I    int64
	F    float64
	S    string
	B    bool
	Unix int64
}

type legacyV1Index struct {
	Name   string
	Cols   []int
	Unique bool
}

type legacyV1Table struct {
	Name    string
	Cols    []ColumnDef
	Indexes []legacyV1Index
	NextRow int64
	AutoInc int64
	RowIDs  []int64
	Rows    [][]legacyV1Value
}

type legacyV1Snapshot struct {
	Version int
	LSN     uint64
	Tables  []legacyV1Table
}

// appendLegacyWALRecord hand-frames one WAL record in the PR 6 format:
// tag 5 (varint unix seconds) for DATETIME arguments, tags 0-4 as today.
func appendLegacyWALRecord(t *testing.T, f *os.File, lsn uint64, sql string, args ...any) {
	t.Helper()
	payload := make([]byte, 8)
	binary.BigEndian.PutUint64(payload, lsn)
	payload = binary.AppendUvarint(payload, 1) // one statement
	payload = binary.AppendUvarint(payload, uint64(len(sql)))
	payload = append(payload, sql...)
	payload = binary.AppendUvarint(payload, uint64(len(args)))
	for _, a := range args {
		switch v := a.(type) {
		case int64:
			payload = append(payload, walTagInt)
			payload = binary.AppendVarint(payload, v)
		case string:
			payload = append(payload, walTagText)
			payload = binary.AppendUvarint(payload, uint64(len(v)))
			payload = append(payload, v...)
		case time.Time:
			payload = append(payload, walTagTimeSec)
			payload = binary.AppendVarint(payload, v.Unix())
		default:
			t.Fatalf("unsupported legacy arg %T", a)
		}
	}
	rec := make([]byte, walRecordHeaderSize, walRecordHeaderSize+len(payload))
	binary.BigEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	rec = append(rec, payload...)
	if _, err := f.Write(rec); err != nil {
		t.Fatalf("write legacy record: %v", err)
	}
}

// TestBootFromLegacySnapshotAndWAL boots the engine from a fixture built in
// the pre-compaction formats — a version-1 gob snapshot (wide per-cell value
// fields) plus a log tail whose DATETIME arguments use the seconds-only wire
// tag — and verifies rows from both sources decode to today's Values.
func TestBootFromLegacySnapshotAndWAL(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "state.wal")
	born := time.Date(2003, 11, 15, 9, 30, 0, 0, time.UTC)

	snap := legacyV1Snapshot{
		Version: 1,
		LSN:     2,
		Tables: []legacyV1Table{{
			Name: "files",
			Cols: []ColumnDef{
				{Name: "id", Type: TypeInt, AutoIncrement: true, NotNull: true},
				{Name: "name", Type: TypeText, NotNull: true},
				{Name: "size", Type: TypeInt},
				{Name: "score", Type: TypeFloat},
				{Name: "valid", Type: TypeBool},
				{Name: "created", Type: TypeTime},
			},
			Indexes: []legacyV1Index{{Name: "files_name", Cols: []int{1}, Unique: true}},
			NextRow: 3,
			AutoInc: 2,
			RowIDs:  []int64{1, 2},
			Rows: [][]legacyV1Value{
				{
					{T: TypeInt, I: 1},
					{T: TypeText, S: "alpha"},
					{T: TypeInt, I: 1024},
					{T: TypeFloat, F: 0.5},
					{T: TypeBool, B: true},
					{T: TypeTime, Unix: born.Unix()},
				},
				{
					{T: TypeInt, I: 2},
					{T: TypeText, S: "beta"},
					{T: TypeNull},
					{T: TypeNull},
					{T: TypeNull},
					{T: TypeNull},
				},
			},
		}},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		t.Fatalf("encode legacy snapshot: %v", err)
	}

	f, err := os.Create(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// LSN 2 is covered by the snapshot and must be skipped; LSN 3 is the tail.
	appendLegacyWALRecord(t, f, 2,
		"INSERT INTO files (name, size, created) VALUES (?, ?, ?)",
		"beta-shadow", int64(7), born)
	appendLegacyWALRecord(t, f, 3,
		"INSERT INTO files (name, size, created) VALUES (?, ?, ?)",
		"gamma", int64(2048), born.Add(time.Hour))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	db := New()
	if err := db.LoadSnapshot(&buf); err != nil {
		t.Fatalf("LoadSnapshot(v1): %v", err)
	}
	w, stats := openTestWAL(t, walPath, db, WALOptions{})
	defer w.Close()
	if stats.Records != 2 || stats.Applied != 1 {
		t.Fatalf("replay stats = %+v, want 2 records / 1 applied", stats)
	}

	rows := mustQuery(t, db, "SELECT id, name, size, score, valid, created FROM files WHERE name = ?", Text("alpha"))
	if len(rows.Data) != 1 {
		t.Fatalf("alpha lookup = %v", rows.Data)
	}
	got := rows.Data[0]
	if got[0] != Int(1) || got[1] != Text("alpha") || got[2] != Int(1024) ||
		got[3] != Float(0.5) || got[4] != Bool(true) || got[5] != Time(born) {
		t.Fatalf("legacy snapshot row decoded to %v", got)
	}
	rows = mustQuery(t, db, "SELECT name, size, created FROM files WHERE name = ?", Text("gamma"))
	if len(rows.Data) != 1 {
		t.Fatalf("gamma lookup = %v", rows.Data)
	}
	if got := rows.Data[0]; got[1] != Int(2048) || got[2] != Time(born.Add(time.Hour)) {
		t.Fatalf("legacy WAL row decoded to %v", got)
	}
	// NULL-heavy legacy row survives.
	rows = mustQuery(t, db, "SELECT size FROM files WHERE name = ?", Text("beta"))
	if len(rows.Data) != 1 || !rows.Data[0][0].IsNull() {
		t.Fatalf("beta row = %v", rows.Data)
	}
	// The autoincrement counter carries over: 3 rows exist, next id is 4.
	res, err := db.Exec("INSERT INTO files (name) VALUES ('delta')")
	if err != nil {
		t.Fatal(err)
	}
	if res.LastInsertID != 4 {
		t.Fatalf("autoinc after legacy boot = %d, want 4", res.LastInsertID)
	}
	// Unique index rebuilt from the legacy rows still enforces.
	if _, err := db.Exec("INSERT INTO files (name) VALUES ('alpha')"); err == nil {
		t.Fatal("unique constraint lost across legacy boot")
	}
}

// TestCurrentSnapshotIsVersion2 pins the write-side format so a future
// refactor can't silently regress to the legacy layout.
func TestCurrentSnapshotIsVersion2(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	var snap gobSnapshot
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Version != 2 {
		t.Fatalf("snapshot version = %d, want 2", snap.Version)
	}
}
