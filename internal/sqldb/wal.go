package sqldb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Write-ahead log.
//
// Snapshots give the engine restart durability at snapshot granularity: a
// crash loses every commit since the last dump. The WAL closes that gap to
// per-commit durability. Each committed transaction serializes its redo
// statements — the same logical statement stream the MVCC writer applied —
// into one self-contained record appended to an append-only log file:
//
//	+----------+----------+--------------------------------------+
//	| len (4B) | crc (4B) | payload (len bytes)                  |
//	+----------+----------+--------------------------------------+
//	payload: lsn (8B big-endian)
//	         nstmts (uvarint)
//	         per statement: sqlLen (uvarint), sql bytes,
//	                        nargs (uvarint), args (tagged values)
//
// The CRC32 (IEEE) covers the payload, so recovery can detect a torn write
// — a record whose tail never reached disk — and truncate it instead of
// failing. Records carry strictly increasing log sequence numbers (LSNs)
// assigned at commit; snapshots embed the LSN of the root they pinned, so
// boot restores the snapshot and replays only the log suffix with larger
// LSNs.
//
// Durability is amortized across concurrent committers by group commit: a
// committer appends its record under the writer lock, publishes its root,
// then either becomes the flush leader — flushing and fsyncing everything
// appended so far — or parks until a leader's fsync covers its LSN. One
// fsync thus acknowledges every commit that arrived while the previous
// fsync was in flight.
//
// A checkpoint (snapshot) rotates the log: the current file is sealed and
// renamed to <path>.1, a fresh file takes new appends, and once a snapshot
// covering the sealed file's last LSN has durably persisted the sealed file
// is deleted. A crash between those steps leaves both generations on disk;
// recovery replays <path>.1 then <path>.

// walRecordHeaderSize is the fixed per-record header: length + CRC32.
const walRecordHeaderSize = 8

// maxWALRecordSize bounds a single record's payload; a length field above
// it is treated as corruption (torn or scribbled tail).
const maxWALRecordSize = 1 << 28

// redoStmt is one logged mutation: the statement text and its bound
// parameters, exactly as the committer executed them.
type redoStmt struct {
	sql  string
	args []Value
}

// WALOptions configures a write-ahead log.
type WALOptions struct {
	// NoSync skips the fsync in group commit: records are flushed to the
	// OS on every commit but reach disk at the kernel's pace. A process
	// crash loses nothing; a power failure can lose the unsynced tail.
	NoSync bool
}

// WALFault describes an injected write-ahead-log failure, returned by the
// fault hook (see SetFaultHook). Ops: "append" (record write), "fsync"
// (group-commit flush).
type WALFault struct {
	// Err fails the operation with this error.
	Err error
	// ShortWrite, for op "append", writes only this many bytes of the
	// record before failing — a simulated torn write. The WAL rewinds the
	// file to the record's start so the live log stays consistent.
	ShortWrite int
	// Delay sleeps this long before the operation proceeds (or fails).
	Delay time.Duration
}

// WALStats reports write-ahead-log counters.
type WALStats struct {
	// Appends counts records appended since open.
	Appends uint64
	// Fsyncs counts group-commit fsync rounds since open. Under concurrent
	// committers this stays well below Appends — that gap is the group-
	// commit amortization.
	Fsyncs uint64
	// Replayed counts records applied during recovery at open.
	Replayed uint64
	// AppendLSN is the LSN of the last record appended (or recovered).
	AppendLSN uint64
	// DurableLSN is the highest LSN covered by a completed flush.
	DurableLSN uint64
}

// ReplayStats reports what recovery found in the log files.
type ReplayStats struct {
	// Records is how many whole records the log held (both generations).
	Records int
	// Applied is how many of them were replayed into the database (LSN
	// above the snapshot's).
	Applied int
	// LastLSN is the highest LSN seen.
	LastLSN uint64
	// TornBytes is how many trailing bytes were truncated as torn or
	// corrupt (never fatal; the log is cut back to the last whole record).
	TornBytes int64
}

// WAL is an append-only redo log with group commit. Open one with OpenWAL
// and install it on a database with DB.AttachWAL; every subsequent commit
// appends its statements and blocks until an fsync covers it.
type WAL struct {
	path string
	opts WALOptions

	// mu guards the file, the buffered tail, sizes and append bookkeeping.
	// Appends run under it (they already hold the database writer lock, so
	// contention is with the flush leader's buffer drain only).
	mu        sync.Mutex
	f         *os.File
	buf       []byte // appended but not yet written to the OS
	size      int64  // bytes written to the OS (file offset of buf)
	appendLSN uint64
	curRecs   uint64 // records in the current generation file
	prevMax   uint64 // last LSN in the sealed previous generation, if any
	prevSeal  bool   // <path>.1 exists
	broken    error  // sticky: the log could not be rewound after a failed append

	// gc guards group-commit state; cond signals leader handoff and
	// durable-LSN advances.
	gc         sync.Mutex
	cond       *sync.Cond
	durable    uint64
	leaderBusy bool
	flushErr   error  // last failed flush round's error...
	errUpto    uint64 // ...and the highest LSN that round tried to cover

	appends  atomic.Uint64
	fsyncs   atomic.Uint64
	replayed atomic.Uint64

	hookMu sync.RWMutex
	hook   func(op string) *WALFault
}

// prevPath is the sealed previous-generation file left by a checkpoint
// rotation that has not yet been released.
func (w *WAL) prevPath() string { return w.path + ".1" }

// SetFaultHook installs (or, with nil, removes) the per-operation fault
// hook — the chaos harness's injection point for append failures, torn
// writes and fsync errors.
func (w *WAL) SetFaultHook(fn func(op string) *WALFault) {
	w.hookMu.Lock()
	w.hook = fn
	w.hookMu.Unlock()
}

// evalHook consults the fault hook, applying any injected delay.
func (w *WAL) evalHook(op string) *WALFault {
	w.hookMu.RLock()
	fn := w.hook
	w.hookMu.RUnlock()
	if fn == nil {
		return nil
	}
	f := fn(op)
	if f != nil && f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	return f
}

// Stats returns the log's counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	lsn := w.appendLSN
	w.mu.Unlock()
	return WALStats{
		Appends:    w.appends.Load(),
		Fsyncs:     w.fsyncs.Load(),
		Replayed:   w.replayed.Load(),
		AppendLSN:  lsn,
		DurableLSN: w.DurableLSN(),
	}
}

// DurableLSN returns the highest LSN covered by a completed flush. A commit
// whose LSN is at or below it has been acknowledged durably.
func (w *WAL) DurableLSN() uint64 {
	w.gc.Lock()
	defer w.gc.Unlock()
	return w.durable
}

// OpenWAL opens (creating if absent) the log at path and replays into db
// every record with an LSN above afterLSN — the caller passes the LSN
// embedded in the snapshot the database was restored from, or 0 for a fresh
// database. A torn or CRC-corrupt tail is truncated, never fatal: the log
// is cut back to its last whole record and recovery proceeds. Both
// generations are replayed when a checkpoint was interrupted mid-rotation.
//
// The returned WAL is positioned for appends; install it with DB.AttachWAL
// before accepting writes. Replay bypasses the database fault hook.
func OpenWAL(path string, db *DB, afterLSN uint64, opts WALOptions) (*WAL, ReplayStats, error) {
	w := &WAL{path: path, opts: opts}
	w.cond = sync.NewCond(&w.gc)
	var stats ReplayStats
	last := afterLSN

	if _, err := os.Stat(w.prevPath()); err == nil {
		w.prevSeal = true
		if err := replayFile(w.prevPath(), db, afterLSN, &stats, &last, nil); err != nil {
			return nil, stats, err
		}
		w.prevMax = last
	} else if !os.IsNotExist(err) {
		return nil, stats, fmt.Errorf("sqldb: wal: %w", err)
	}

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, stats, fmt.Errorf("sqldb: wal: %w", err)
	}
	var recs uint64
	if err := replayInto(f, db, afterLSN, &stats, &last, &recs); err != nil {
		f.Close()
		return nil, stats, err
	}
	w.f = f
	w.size = validWALSize(&stats, f)
	w.curRecs = recs
	w.appendLSN = last
	w.durable = last
	w.replayed.Store(uint64(stats.Applied))
	stats.LastLSN = last
	return w, stats, nil
}

// validWALSize returns the current file's post-truncation size.
func validWALSize(_ *ReplayStats, f *os.File) int64 {
	fi, err := f.Stat()
	if err != nil {
		return 0
	}
	return fi.Size()
}

// replayFile opens one log generation read-write, replays it and closes it.
func replayFile(path string, db *DB, afterLSN uint64, stats *ReplayStats, last *uint64, recs *uint64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("sqldb: wal: %w", err)
	}
	defer f.Close()
	return replayInto(f, db, afterLSN, stats, last, recs)
}

// replayInto scans one log file, applies every whole record with LSN above
// afterLSN, and truncates the file at the first torn, corrupt or
// non-monotonic record. last carries the running LSN high-water mark across
// generations; a record's LSN must exceed it.
func replayInto(f *os.File, db *DB, afterLSN uint64, stats *ReplayStats, last *uint64, recs *uint64) error {
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("sqldb: wal: %w", err)
	}
	data := make([]byte, fi.Size())
	if _, err := f.ReadAt(data, 0); err != nil && fi.Size() > 0 {
		return fmt.Errorf("sqldb: wal: read: %w", err)
	}
	valid := int64(0)
	off := 0
	for {
		rest := data[off:]
		if len(rest) < walRecordHeaderSize {
			break // torn header (or clean EOF when len(rest) == 0)
		}
		n := binary.BigEndian.Uint32(rest[0:4])
		crc := binary.BigEndian.Uint32(rest[4:8])
		if n == 0 || n > maxWALRecordSize || walRecordHeaderSize+int(n) > len(rest) {
			break // torn or scribbled length
		}
		payload := rest[walRecordHeaderSize : walRecordHeaderSize+int(n)]
		if crc32.ChecksumIEEE(payload) != crc {
			break // torn payload
		}
		lsn, stmts, err := decodeWALRecord(payload)
		if err != nil {
			// The CRC matched, so the bytes are what was written: this is a
			// format error, not a torn write. Refuse to guess.
			return fmt.Errorf("sqldb: wal: record at offset %d: %w", off, err)
		}
		if lsn <= *last && !(lsn <= afterLSN) {
			break // LSN went backwards: treat the rest as garbage
		}
		stats.Records++
		if lsn > *last {
			*last = lsn
		}
		if lsn > afterLSN {
			if err := db.applyWALRecord(lsn, stmts); err != nil {
				return fmt.Errorf("sqldb: wal: replay lsn %d: %w", lsn, err)
			}
			stats.Applied++
		}
		off += walRecordHeaderSize + int(n)
		valid = int64(off)
		if recs != nil {
			*recs++
		}
	}
	if valid < fi.Size() {
		stats.TornBytes += fi.Size() - valid
		if err := f.Truncate(valid); err != nil {
			return fmt.Errorf("sqldb: wal: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("sqldb: wal: %w", err)
		}
	}
	return nil
}

// append encodes and buffers one commit's record. Called with the database
// writer lock held, so records land in the file in LSN order. The bytes are
// buffered; group commit flushes them. A failed append rewinds the log to
// the record's start so the file never carries a half-record while the
// process lives (a crash mid-write is what the CRC is for).
func (w *WAL) append(lsn uint64, stmts []redoStmt) error {
	rec := encodeWALRecord(lsn, stmts)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return w.broken
	}
	if f := w.evalHook("append"); f != nil {
		if f.ShortWrite > 0 && f.ShortWrite < len(rec) {
			// Simulate a torn live write: push a prefix to the OS, then
			// recover by rewinding the file to the record boundary.
			if _, werr := w.f.WriteAt(rec[:f.ShortWrite], w.size); werr == nil {
				if terr := w.f.Truncate(w.size); terr != nil {
					w.broken = fmt.Errorf("sqldb: wal: rewind after failed append: %w", terr)
				}
			}
		}
		if f.Err != nil {
			return f.Err
		}
	}
	w.buf = append(w.buf, rec...)
	w.appendLSN = lsn
	w.curRecs++
	w.appends.Add(1)
	return nil
}

// waitDurable blocks until an fsync covers lsn, leading the flush itself
// when no other committer is. Returns the flush error if the round covering
// lsn failed.
func (w *WAL) waitDurable(lsn uint64) error {
	w.gc.Lock()
	for {
		if w.durable >= lsn {
			w.gc.Unlock()
			return nil
		}
		if w.flushErr != nil && w.errUpto >= lsn {
			err := w.flushErr
			w.gc.Unlock()
			return err
		}
		if !w.leaderBusy {
			w.leaderBusy = true
			w.gc.Unlock()
			break
		}
		w.cond.Wait()
	}

	target, err := w.flushRound()

	w.gc.Lock()
	w.leaderBusy = false
	if err == nil {
		if target > w.durable {
			w.durable = target
		}
	} else {
		w.flushErr, w.errUpto = err, target
	}
	w.cond.Broadcast()
	w.gc.Unlock()
	return err
}

// flushRound drains the append buffer to the OS and fsyncs. It returns the
// highest LSN the round covered. Only one round runs at a time (leaderBusy);
// appends continue concurrently and are picked up by the next round.
func (w *WAL) flushRound() (uint64, error) {
	w.mu.Lock()
	target := w.appendLSN
	f := w.f
	var err error
	if len(w.buf) > 0 {
		var n int
		n, err = f.WriteAt(w.buf, w.size)
		w.size += int64(n)
		if err == nil {
			w.buf = w.buf[:0]
		} else if n > 0 {
			w.buf = append(w.buf[:0], w.buf[n:]...)
		}
	}
	w.mu.Unlock()
	if err != nil {
		return target, fmt.Errorf("sqldb: wal write: %w", err)
	}
	if fault := w.evalHook("fsync"); fault != nil && fault.Err != nil {
		return target, fault.Err
	}
	if !w.opts.NoSync {
		if err := f.Sync(); err != nil {
			return target, fmt.Errorf("sqldb: wal fsync: %w", err)
		}
	}
	w.fsyncs.Add(1)
	return target, nil
}

// Rotate seals the current log file for an imminent checkpoint: the file is
// flushed, fsynced and renamed to <path>.1, and a fresh file takes new
// appends. It is a no-op when the current file is empty or when a previous
// seal is still awaiting release (an earlier checkpoint failed mid-way —
// records keep accumulating until a checkpoint succeeds). The sealed file
// is deleted only by DropCovered, after a snapshot covering it has durably
// persisted.
func (w *WAL) Rotate() error {
	// Exclude concurrent flush rounds: rotation swaps the file handle.
	w.gc.Lock()
	for w.leaderBusy {
		w.cond.Wait()
	}
	w.leaderBusy = true
	w.gc.Unlock()
	defer func() {
		w.gc.Lock()
		w.leaderBusy = false
		w.cond.Broadcast()
		w.gc.Unlock()
	}()

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return w.broken
	}
	if w.curRecs == 0 || w.prevSeal {
		return nil
	}
	if len(w.buf) > 0 {
		n, err := w.f.WriteAt(w.buf, w.size)
		w.size += int64(n)
		if err != nil {
			return fmt.Errorf("sqldb: wal rotate: %w", err)
		}
		w.buf = w.buf[:0]
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("sqldb: wal rotate: %w", err)
	}
	if err := os.Rename(w.path, w.prevPath()); err != nil {
		return fmt.Errorf("sqldb: wal rotate: %w", err)
	}
	nf, err := os.OpenFile(w.path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		// The rename happened; appends must keep going somewhere. Rename
		// back so the single-file invariant holds.
		if rerr := os.Rename(w.prevPath(), w.path); rerr != nil {
			w.broken = fmt.Errorf("sqldb: wal rotate: %v (and undo failed: %v)", err, rerr)
			return w.broken
		}
		return fmt.Errorf("sqldb: wal rotate: %w", err)
	}
	if err := syncWALDir(w.path); err != nil {
		nf.Close()
		return err
	}
	w.f.Close()
	w.f = nf
	w.size = 0
	w.prevSeal = true
	w.prevMax = w.appendLSN
	w.curRecs = 0
	return nil
}

// DropCovered releases the sealed previous-generation file once a snapshot
// embedding checkpointLSN has durably persisted. The file is kept — and
// recovery keeps replaying it — unless the checkpoint actually covers its
// last record; a checkpoint that failed or raced an in-flight commit simply
// leaves it for the next one. This conditionality is what makes a failed
// periodic snapshot harmless: the log is never truncated past durable
// coverage.
func (w *WAL) DropCovered(checkpointLSN uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.prevSeal || checkpointLSN < w.prevMax {
		return nil
	}
	if err := os.Remove(w.prevPath()); err != nil {
		return fmt.Errorf("sqldb: wal drop: %w", err)
	}
	w.prevSeal = false
	w.prevMax = 0
	return syncWALDir(w.path)
}

// Sealed reports whether a previous-generation file is awaiting release
// (diagnostic; a long-lived seal means checkpoints keep failing).
func (w *WAL) Sealed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.prevSeal
}

// Close flushes and fsyncs the log and closes the file. Commits after Close
// fail.
func (w *WAL) Close() error {
	if err := w.waitDurable(func() uint64 { w.mu.Lock(); defer w.mu.Unlock(); return w.appendLSN }()); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken == nil {
		w.broken = fmt.Errorf("sqldb: wal is closed")
	}
	return w.f.Close()
}

// syncWALDir fsyncs the log's directory so renames and removals survive
// power loss.
func syncWALDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("sqldb: wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("sqldb: wal: %w", err)
	}
	return nil
}

// --- record encoding -------------------------------------------------------

// encodeWALRecord renders one commit as header + payload bytes.
func encodeWALRecord(lsn uint64, stmts []redoStmt) []byte {
	payload := make([]byte, 8, 64*len(stmts)+8)
	binary.BigEndian.PutUint64(payload, lsn)
	payload = binary.AppendUvarint(payload, uint64(len(stmts)))
	for _, s := range stmts {
		payload = binary.AppendUvarint(payload, uint64(len(s.sql)))
		payload = append(payload, s.sql...)
		payload = binary.AppendUvarint(payload, uint64(len(s.args)))
		for _, v := range s.args {
			payload = encodeWALValue(payload, v)
		}
	}
	rec := make([]byte, walRecordHeaderSize, walRecordHeaderSize+len(payload))
	binary.BigEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	return append(rec, payload...)
}

// decodeWALRecord parses a CRC-verified payload back into its statements.
func decodeWALRecord(payload []byte) (lsn uint64, stmts []redoStmt, err error) {
	if len(payload) < 8 {
		return 0, nil, fmt.Errorf("payload too short")
	}
	lsn = binary.BigEndian.Uint64(payload)
	b := payload[8:]
	nstmts, b, err := walUvarint(b)
	if err != nil {
		return 0, nil, err
	}
	stmts = make([]redoStmt, 0, nstmts)
	for i := uint64(0); i < nstmts; i++ {
		var sqlLen uint64
		sqlLen, b, err = walUvarint(b)
		if err != nil || uint64(len(b)) < sqlLen {
			return 0, nil, fmt.Errorf("statement %d: bad sql length", i)
		}
		sql := string(b[:sqlLen])
		b = b[sqlLen:]
		var nargs uint64
		nargs, b, err = walUvarint(b)
		if err != nil {
			return 0, nil, err
		}
		args := make([]Value, nargs)
		for j := range args {
			args[j], b, err = decodeWALValue(b)
			if err != nil {
				return 0, nil, fmt.Errorf("statement %d arg %d: %w", i, j, err)
			}
		}
		stmts = append(stmts, redoStmt{sql: sql, args: args})
	}
	if len(b) != 0 {
		return 0, nil, fmt.Errorf("%d trailing bytes", len(b))
	}
	return lsn, stmts, nil
}

// Typed-argument wire tags. These are a frozen on-disk contract — logs
// written before the in-memory Value layout changed must keep replaying —
// so they are named constants rather than casts of the (internal,
// reorderable) Type enum, even though the numeric values coincide for the
// original five. Tags 1–5 are the PR 6 format; walTagTimeMicro is additive:
// the encoder only emits it for sub-second timestamps, which the seconds
// tag cannot carry, so logs written by this version remain readable by the
// old decoder unless they actually contain such a value.
const (
	walTagNull      = 0
	walTagInt       = 1
	walTagFloat     = 2
	walTagText      = 3
	walTagBool      = 4
	walTagTimeSec   = 5 // varint unix seconds
	walTagTimeMicro = 6 // varint unix microseconds
)

// encodeWALValue appends one tagged value: a tag byte then a tag-specific
// payload (varint int, raw float bits, length-prefixed text, bool byte,
// varint unix seconds or microseconds).
func encodeWALValue(b []byte, v Value) []byte {
	switch v.T {
	case TypeNull:
		b = append(b, walTagNull)
	case TypeInt:
		b = append(b, walTagInt)
		b = binary.AppendVarint(b, v.N)
	case TypeFloat:
		b = append(b, walTagFloat)
		b = binary.BigEndian.AppendUint64(b, uint64(v.N))
	case TypeText:
		b = append(b, walTagText)
		b = binary.AppendUvarint(b, uint64(len(v.S)))
		b = append(b, v.S...)
	case TypeBool:
		b = append(b, walTagBool)
		if v.N != 0 {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	case TypeTime:
		const perSec = int64(time.Second) / int64(time.Microsecond)
		if v.N%perSec == 0 {
			b = append(b, walTagTimeSec)
			b = binary.AppendVarint(b, v.N/perSec)
		} else {
			b = append(b, walTagTimeMicro)
			b = binary.AppendVarint(b, v.N)
		}
	}
	return b
}

// decodeWALValue parses one tagged value, returning the remaining bytes.
// Text is interned: replay re-creates every hot string in the log, and the
// schema vocabulary (attribute names, type tags) repeats per row.
func decodeWALValue(b []byte) (Value, []byte, error) {
	if len(b) == 0 {
		return Value{}, nil, fmt.Errorf("missing value tag")
	}
	t := b[0]
	b = b[1:]
	switch t {
	case walTagNull:
		return Null(), b, nil
	case walTagInt:
		i, n := binary.Varint(b)
		if n <= 0 {
			return Value{}, nil, fmt.Errorf("bad int")
		}
		return Int(i), b[n:], nil
	case walTagFloat:
		if len(b) < 8 {
			return Value{}, nil, fmt.Errorf("bad float")
		}
		return Float(math.Float64frombits(binary.BigEndian.Uint64(b))), b[8:], nil
	case walTagText:
		n, rest, err := walUvarint(b)
		if err != nil || uint64(len(rest)) < n {
			return Value{}, nil, fmt.Errorf("bad text length")
		}
		return Text(internBytes(rest[:n])), rest[n:], nil
	case walTagBool:
		if len(b) < 1 {
			return Value{}, nil, fmt.Errorf("bad bool")
		}
		return Bool(b[0] != 0), b[1:], nil
	case walTagTimeSec:
		sec, n := binary.Varint(b)
		if n <= 0 {
			return Value{}, nil, fmt.Errorf("bad time")
		}
		return Time(time.Unix(sec, 0).UTC()), b[n:], nil
	case walTagTimeMicro:
		us, n := binary.Varint(b)
		if n <= 0 {
			return Value{}, nil, fmt.Errorf("bad time")
		}
		return TimeMicros(us), b[n:], nil
	}
	return Value{}, nil, fmt.Errorf("unknown value tag %d", t)
}

// walUvarint reads one uvarint, returning the remaining bytes.
func walUvarint(b []byte) (uint64, []byte, error) {
	x, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("bad uvarint")
	}
	return x, b[n:], nil
}
