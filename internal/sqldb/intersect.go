package sqldb

import "sort"

// Sorted rowid-set intersection: the execution strategy that replaces
// nested-loop self-joins for the EAV attribute queries behind Fig. 11.
//
// An N-attribute query is an N-way self-join over user_attribute in which
// every stage is tied to every other through one equality class of join
// keys ({a0.object_id, t.id, a1.object_id, ...}). Nested loops make the
// cost multiplicative: each stage re-probes its index once per surviving
// tuple of the outer stages. Intersection makes it additive: each stage is
// evaluated once against its own local predicates, producing a sorted
// (key, rowids) list; the lists are merged key-wise, keys missing from any
// stage drop out, and the surviving per-key row groups are emitted as cross
// products. Total cost is the sum of the per-stage probes plus the output
// size — flat-ish in the number of attributes instead of multiplicative.
//
// Three further properties keep the constant factor flat:
//
//   - Covered stages. When a stage's local predicates are exactly the
//     equality prefix of its chosen index and the join-key column is also
//     an index column (the catalog's ua_attr_* indexes are shaped for
//     this), the stage is answered from index entries alone — no row
//     fetches, no filter evaluation per scanned entry.
//   - Consumed key equalities. The cross-stage equalities between chosen
//     key columns are enforced by the key grouping itself, which is exact:
//     SQL `=` evaluates as Compare()==0 with NULL never matching, the
//     grouping compares with the same Compare and skips NULL keys, and
//     requiring one shared declared column type makes Compare transitive
//     (mixed int/float comparison is not, near 2^53). They are therefore
//     not re-evaluated per emitted tuple.
//   - Lazy row binding. Emission fetches rows only for stages whose
//     columns the projection, ORDER BY or a residual conjunct actually
//     reads; the attribute stages of a DISTINCT-name query contribute only
//     multiplicity.
//
// Everything else stays re-verified: local predicates re-run on scanned
// rows whenever the stage is not covered (including when bind degrades a
// probe at execution time), and any cross-stage conjunct that is not an
// equality between two chosen key columns lands in residuals, evaluated on
// every emitted tuple.

// istage is one stage of an intersection plan.
type istage struct {
	si     int // index into selectPlan.stages (statement order)
	keyCol int // column position of this stage's join-key column
	// access/locals drive materialization: scan the access path, keep rows
	// passing the local predicates, group by key.
	access accessSpec
	locals []Expr
	est    float64
	// covered: access is a pure equality probe whose slots consume every
	// local predicate, so scanned entries need no row fetch or filter pass.
	// keyEntryPos is the key column's position among the index's columns
	// (-1 when the index does not carry it); covered requires it.
	covered     bool
	keyEntryPos int
	// probe, when set, replaces materialization: the stage is reached by
	// probing probeIdx once per key surviving the stages ordered before it.
	probe    bool
	probeIdx *index
}

// intersectPlan executes the stages most-selective-first and emits the
// surviving per-key cross products in statement order.
type intersectPlan struct {
	order []istage
	// residuals are cross-stage conjuncts other than the consumed key
	// equalities, re-evaluated on every emitted tuple.
	residuals []Expr
	// needed marks stages (statement order) whose rows emission must bind
	// for the projection, ORDER BY or residuals.
	needed []bool
	// keyT is the shared declared type of the key columns. When it is one of
	// the types Compare orders by the int64 payload alone (INTEGER, BOOLEAN,
	// DATETIME — not FLOAT, whose IEEE bit pattern misorders negatives, and
	// not TEXT), intKeys is set and the whole key pipeline — group folding,
	// list intersection, group alignment — runs on bare int64s instead of
	// 32-byte Values. That keeps the per-entry cost of wide covered scans at
	// an integer compare and a pointer-free append (no GC write barriers:
	// Value carries a string header, so []Value appends pay them).
	keyT    Type
	intKeys bool
}

// resolveCol maps a column reference to (stage, column); unqualified refs
// must be unambiguous across the stages' tables.
func resolveCol(ex Expr, stages []stagePlan) (int, int, bool) {
	ref, ok := ex.(*ColumnRef)
	if !ok {
		return 0, 0, false
	}
	if ref.Table != "" {
		for si := range stages {
			if stages[si].ref.Alias == ref.Table {
				if c, ok := stages[si].tbl.colPos[ref.Column]; ok {
					return si, c, true
				}
				return 0, 0, false
			}
		}
		return 0, 0, false
	}
	found, col := -1, 0
	for si := range stages {
		if c, ok := stages[si].tbl.colPos[ref.Column]; ok {
			if found >= 0 {
				return 0, 0, false // ambiguous
			}
			found, col = si, c
		}
	}
	return found, col, found >= 0
}

// markRefs sets needed[si] for every stage a column of ex may refer to.
// Unqualified names mark every stage carrying such a column (conservative).
func markRefs(ex Expr, stages []stagePlan, needed []bool) {
	switch x := ex.(type) {
	case *ColumnRef:
		for si := range stages {
			if x.Table != "" {
				if stages[si].ref.Alias == x.Table {
					needed[si] = true
				}
				continue
			}
			if _, ok := stages[si].tbl.colPos[x.Column]; ok {
				needed[si] = true
			}
		}
	case *BinaryExpr:
		markRefs(x.L, stages, needed)
		markRefs(x.R, stages, needed)
	case *UnaryExpr:
		markRefs(x.E, stages, needed)
	case *InExpr:
		markRefs(x.E, stages, needed)
		for _, it := range x.List {
			markRefs(it, stages, needed)
		}
	case *IsNullExpr:
		markRefs(x.E, stages, needed)
	}
}

// localEq decomposes a conjunct into (column, constant-expression) if it is
// a simple equality between a column of the stage and a row-free expression,
// mirroring planSpec's slot collection.
func localEq(c Expr, alias string, tbl *table) (int, Expr, bool) {
	b, ok := c.(*BinaryExpr)
	if !ok || b.Op != "=" {
		return 0, nil, false
	}
	if p, ok := colOf(b.L, alias, tbl); ok && constExpr(b.R) {
		return p, b.R, true
	}
	if p, ok := colOf(b.R, alias, tbl); ok && constExpr(b.L) {
		return p, b.L, true
	}
	return 0, nil, false
}

// specCovers reports whether the spec's equality slots consume every local
// predicate: each local must be a simple equality whose (column, expression)
// pair is one of the spec's slots. Expression identity is pointer identity —
// planSpec stores the conjuncts' own AST nodes — so a second equality on the
// same column with a different expression correctly fails the check.
func specCovers(sp accessSpec, alias string, tbl *table, locals []Expr) bool {
	if sp.idx == nil || sp.inExprs != nil || sp.loExpr != nil || sp.hiExpr != nil {
		return false
	}
	for _, c := range locals {
		col, val, ok := localEq(c, alias, tbl)
		if !ok {
			return false
		}
		found := false
		for i := range sp.eqCols {
			if sp.eqCols[i] == col && sp.eqExprs[i] == val {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// planIntersect decides whether the compiled plan qualifies for sorted-set
// intersection and, if so, attaches the intersection plan. Requirements:
// at least two stages, INNER joins only, and one equality class of join
// keys that covers every stage with a single shared column type. Anything
// else keeps the nested-loop executor.
func (p *selectPlan) planIntersect(stats statsRegistry) {
	stages := p.stages
	if len(stages) < 2 {
		return
	}
	for si := 1; si < len(stages); si++ {
		if stages[si].join.Left || stages[si].join.On == nil {
			return
		}
	}

	// Gather every conjunct: WHERE plus all ON clauses (equivalent for
	// INNER joins).
	var conjs []Expr
	if p.st.Where != nil {
		conjs = append(conjs, conjuncts(p.st.Where)...)
	}
	for si := 1; si < len(stages); si++ {
		conjs = append(conjs, conjuncts(stages[si].join.On)...)
	}

	// Union-find over (stage, column) nodes linked by cross-stage equality
	// conjuncts.
	type node = [2]int
	parent := map[node]node{}
	var find func(n node) node
	find = func(n node) node {
		pn, ok := parent[n]
		if !ok || pn == n {
			return n
		}
		r := find(pn)
		parent[n] = r
		return r
	}
	union := func(a, b node) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, c := range conjs {
		b, ok := c.(*BinaryExpr)
		if !ok || b.Op != "=" {
			continue
		}
		ls, lc, lok := resolveCol(b.L, stages)
		rs, rc, rok := resolveCol(b.R, stages)
		if lok && rok && ls != rs {
			union(node{ls, lc}, node{rs, rc})
		}
	}
	if len(parent) == 0 {
		return
	}

	// Group class members per root (roots that were never union'd as
	// children are not map keys, so each class also gets its root appended;
	// a duplicate member is harmless below). Pick the class covering every
	// stage whose smallest member is least, keeping plans deterministic.
	members := map[node][]node{}
	for n := range parent {
		members[find(n)] = append(members[find(n)], n)
	}
	var classes [][]node
	for r, ms := range members {
		classes = append(classes, append(ms, r))
	}
	best := -1
	var bestMin node
	for ci, ms := range classes {
		covered := make([]bool, len(stages))
		minN := ms[0]
		for _, m := range ms {
			covered[m[0]] = true
			if m[0] < minN[0] || (m[0] == minN[0] && m[1] < minN[1]) {
				minN = m
			}
		}
		full := true
		for _, c := range covered {
			if !c {
				full = false
				break
			}
		}
		if !full {
			continue
		}
		if best < 0 || minN[0] < bestMin[0] || (minN[0] == bestMin[0] && minN[1] < bestMin[1]) {
			best, bestMin = ci, minN
		}
	}
	if best < 0 {
		return
	}

	// Per-stage key column: the smallest class member for that stage. All
	// key columns must share one declared type so that grouping by Compare
	// is exact equality (see the package comment).
	keyCol := make([]int, len(stages))
	for i := range keyCol {
		keyCol[i] = -1
	}
	for _, m := range classes[best] {
		if keyCol[m[0]] < 0 || m[1] < keyCol[m[0]] {
			keyCol[m[0]] = m[1]
		}
	}
	keyType := stages[0].tbl.cols[keyCol[0]].Type
	for si := range stages {
		if stages[si].tbl.cols[keyCol[si]].Type != keyType {
			return
		}
	}

	// Classify every conjunct: local to exactly one stage's scope, consumed
	// (an equality between two chosen key columns — enforced exactly by the
	// key grouping), or a cross-stage residual re-checked at emit time.
	locals := make([][]Expr, len(stages))
	var residuals []Expr
	for _, c := range conjs {
		placed := false
		for si := range stages {
			if refsOnly(c, map[string]*table{stages[si].ref.Alias: stages[si].tbl}) {
				locals[si] = append(locals[si], c)
				placed = true
				break
			}
		}
		if placed {
			continue
		}
		if b, ok := c.(*BinaryExpr); ok && b.Op == "=" {
			ls, lc, lok := resolveCol(b.L, stages)
			rs, rc, rok := resolveCol(b.R, stages)
			if lok && rok && ls != rs && lc == keyCol[ls] && rc == keyCol[rs] {
				continue // consumed by the key grouping
			}
		}
		residuals = append(residuals, c)
	}

	order := make([]istage, len(stages))
	for si := range stages {
		access, est := planSpec(stages[si].tbl, stages[si].ref.Alias, locals[si], stats)
		is := istage{
			si:          si,
			keyCol:      keyCol[si],
			access:      access,
			locals:      locals[si],
			est:         est,
			keyEntryPos: -1,
			probeIdx:    stages[si].tbl.findIndex([]int{keyCol[si]}),
		}
		if access.idx != nil {
			for pos, c := range access.idx.cols {
				if c == keyCol[si] {
					is.keyEntryPos = pos
					break
				}
			}
		}
		is.covered = is.keyEntryPos >= 0 &&
			specCovers(access, stages[si].ref.Alias, stages[si].tbl, locals[si])
		order[si] = is
	}
	sort.SliceStable(order, func(a, b int) bool { return order[a].est < order[b].est })
	// Stages after the first may be reached by key probes instead of their
	// own scan when an index on the key column exists and probing the keys
	// surviving so far is estimated cheaper than the stage's own access.
	for i := 1; i < len(order); i++ {
		is := &order[i]
		if is.probeIdx != nil && order[0].est*stats.eqRows(is.probeIdx, 1) < is.est {
			is.probe = true
		}
	}

	// Stages whose rows emission must bind: anything the projection,
	// ORDER BY or residuals read.
	needed := make([]bool, len(stages))
	for _, oc := range p.outs {
		if oc.count {
			continue
		}
		if oc.expr != nil {
			markRefs(oc.expr, stages, needed)
		} else {
			needed[oc.bind] = true
		}
	}
	for _, ob := range p.st.OrderBy {
		markRefs(ob.Expr, stages, needed)
	}
	for _, c := range residuals {
		markRefs(c, stages, needed)
	}

	p.inter = &intersectPlan{
		order: order, residuals: residuals, needed: needed,
		keyT:    keyType,
		intKeys: keyType == TypeInt || keyType == TypeBool || keyType == TypeTime,
	}
}

// stageGroups is one stage's materialized key→rowids mapping in flat sorted
// form: keys ascend, and the i-th key's rowids live at
// rowids[offs[i]:offs[i+1]]. Three slices total, however many groups — the
// intersection of wide stages must not pay one allocation per key. Exactly
// one of keys/ikeys is populated, per the plan's intKeys mode.
type stageGroups struct {
	keys   []Value // generic mode: ascend by Compare
	ikeys  []int64 // int-key mode: the keys' N payloads, ascending
	offs   []int32 // group count + 1 once sealed
	rowids []int64
}

// add appends a rowid, opening a new group when key differs from the last.
// Callers must present keys in ascending order.
func (g *stageGroups) add(key Value, rowid int64) {
	if len(g.offs) == 0 || Compare(g.keys[len(g.keys)-1], key) != 0 {
		g.keys = append(g.keys, key)
		g.offs = append(g.offs, int32(len(g.rowids)))
	}
	g.rowids = append(g.rowids, rowid)
}

// addInt is add for int-key mode.
func (g *stageGroups) addInt(ik, rowid int64) {
	if len(g.offs) == 0 || g.ikeys[len(g.ikeys)-1] != ik {
		g.ikeys = append(g.ikeys, ik)
		g.offs = append(g.offs, int32(len(g.rowids)))
	}
	g.rowids = append(g.rowids, rowid)
}

// seal closes the last group; call once after the final add.
func (g *stageGroups) seal() {
	g.offs = append(g.offs, int32(len(g.rowids)))
}

// makeGroups preallocates a stageGroups for n expected rowids (the planner's
// cardinality estimate), so the hot covered scans append without regrowing.
func makeGroups(n int, intKeys bool) stageGroups {
	g := stageGroups{
		offs:   make([]int32, 0, n+1),
		rowids: make([]int64, 0, n),
	}
	if intKeys {
		g.ikeys = make([]int64, 0, n)
	} else {
		g.keys = make([]Value, 0, n)
	}
	return g
}

// keyRowid pairs one candidate row's join key with its rowid during stage
// materialization.
type keyRowid struct {
	key   Value
	rowid int64
}

// groupPairs sorts (key, rowid) pairs and folds them into groups. Only the
// paths that cannot read keys in index order pay this sort. In int-key mode
// the sort compares N payloads directly — identical order to Compare for
// those types.
func groupPairs(pairs []keyRowid, intKeys bool) stageGroups {
	var g stageGroups
	if intKeys {
		sort.Slice(pairs, func(a, b int) bool {
			if pairs[a].key.N != pairs[b].key.N {
				return pairs[a].key.N < pairs[b].key.N
			}
			return pairs[a].rowid < pairs[b].rowid
		})
		for i := range pairs {
			g.addInt(pairs[i].key.N, pairs[i].rowid)
		}
	} else {
		sort.Slice(pairs, func(a, b int) bool {
			c := Compare(pairs[a].key, pairs[b].key)
			if c != 0 {
				return c < 0
			}
			return pairs[a].rowid < pairs[b].rowid
		})
		for i := range pairs {
			g.add(pairs[i].key, pairs[i].rowid)
		}
	}
	g.seal()
	return g
}

// intersectKeys returns the sorted intersection of two ascending key lists,
// reusing a's storage.
func intersectKeys(a, b []Value) []Value {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch c := Compare(a[i], b[j]); {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// intersectInts is intersectKeys for int-key mode.
func intersectInts(a, b []int64) []int64 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// materialize evaluates one stage on its own: scan the access path, keep
// rows passing the local predicates, group by key. Covered stages read keys
// straight out of index entries and skip the row fetch and filter pass —
// unless bind degraded the probe (NULL or unevaluable slot), detected here
// by comparing the bound prefix against the spec's slots. And when the key
// column is the first index column after the equality prefix (the ua_attr_*
// shape), the scan already yields keys in ascending order, so the groups
// fold directly with no sort at all.
func (p *selectPlan) materialize(is *istage, ev *env) (stageGroups, error) {
	ap := is.access.bind(ev.params)
	if is.covered && ap.idx != nil && ap.inList == nil &&
		ap.rangeLo == nil && ap.rangeHi == nil && len(ap.eqVals) == len(is.access.eqExprs) {
		if is.keyEntryPos <= len(ap.eqVals) {
			// Key column is fixed by the prefix or immediately follows it:
			// entries arrive key-ascending (NULL keys sort first and are
			// skipped, so groups stay contiguous).
			g := makeGroups(int(is.est)+1, p.inter.intKeys)
			if p.inter.intKeys {
				is.access.idx.scanEqualEntries(ap.eqVals, func(k indexKey) bool {
					key := k.col(is.keyEntryPos)
					if key.T == TypeNull {
						return true // a NULL key can never satisfy a join equality
					}
					g.addInt(key.N, k.rowid)
					return true
				})
			} else {
				is.access.idx.scanEqualEntries(ap.eqVals, func(k indexKey) bool {
					key := k.col(is.keyEntryPos)
					if key.IsNull() {
						return true
					}
					g.add(key, k.rowid)
					return true
				})
			}
			g.seal()
			return g, nil
		}
		var pairs []keyRowid
		is.access.idx.scanEqualEntries(ap.eqVals, func(k indexKey) bool {
			key := k.col(is.keyEntryPos)
			if key.IsNull() {
				return true
			}
			pairs = append(pairs, keyRowid{key: key, rowid: k.rowid})
			return true
		})
		return groupPairs(pairs, p.inter.intKeys), nil
	}
	var pairs []keyRowid
	var serr error
	ap.scan(func(rowid int64, row Row) bool {
		ev.bindings[is.si].row = row
		ok, err := passesAll(is.locals, ev)
		if err != nil {
			serr = err
			return false
		}
		if !ok {
			return true
		}
		key := row[is.keyCol]
		if key.IsNull() {
			return true
		}
		pairs = append(pairs, keyRowid{key: key, rowid: rowid})
		return true
	})
	ev.bindings[is.si].row = nil
	if serr != nil {
		return stageGroups{}, serr
	}
	return groupPairs(pairs, p.inter.intKeys), nil
}

// probeStage reaches a stage by probing its key index once per surviving
// key instead of scanning its own access path. keyAt(i) for i < nk yields
// the surviving keys in ascending order, so the groups are built in order.
func (p *selectPlan) probeStage(is *istage, ev *env, nk int, keyAt func(int) Value) (stageGroups, error) {
	ip := p.inter
	sp := &p.stages[is.si]
	g := makeGroups(nk, ip.intKeys)
	probe := make([]Value, 1)
	var perr error
	for i := 0; i < nk; i++ {
		key := keyAt(i)
		probe[0] = key
		is.probeIdx.scanEqual(probe, func(rowid int64) bool {
			row, _ := sp.tbl.rows.Get(rowid)
			ev.bindings[is.si].row = row
			ok, err := passesAll(is.locals, ev)
			if err != nil {
				perr = err
				return false
			}
			if ok {
				if ip.intKeys {
					g.addInt(key.N, rowid)
				} else {
					g.add(key, rowid)
				}
			}
			return true
		})
		if perr != nil {
			ev.bindings[is.si].row = nil
			return stageGroups{}, perr
		}
	}
	g.seal()
	ev.bindings[is.si].row = nil
	return g, nil
}

// runIntersect executes the intersection plan: materialize or probe each
// stage in selectivity order, merge the sorted per-stage key lists, then
// emit the surviving cross products in statement order. Emission order is
// deterministic — keys ascending, each stage's rowids in materialization
// order — independent of the chosen stage order.
func (p *selectPlan) runIntersect(ev *env, emit func() bool) error {
	ip := p.inter
	ns := len(p.stages)
	groups := make([]stageGroups, ns) // indexed by statement-order stage
	var curV []Value                  // surviving keys, generic mode
	var curI []int64                  // surviving keys, int-key mode
	nKeys := 0

	for oi := range ip.order {
		is := &ip.order[oi]
		if oi > 0 && nKeys == 0 {
			return nil // some stage already came up empty
		}
		var g stageGroups
		var err error
		if oi > 0 && is.probe {
			if ip.intKeys {
				g, err = p.probeStage(is, ev, nKeys, func(i int) Value { return Value{T: ip.keyT, N: curI[i]} })
			} else {
				g, err = p.probeStage(is, ev, nKeys, func(i int) Value { return curV[i] })
			}
		} else {
			g, err = p.materialize(is, ev)
		}
		if err != nil {
			return err
		}
		groups[is.si] = g
		if ip.intKeys {
			if oi == 0 {
				curI = append(curI[:0], g.ikeys...)
			} else {
				curI = intersectInts(curI, g.ikeys)
			}
			nKeys = len(curI)
		} else {
			if oi == 0 {
				curV = append(curV[:0], g.keys...)
			} else {
				curV = intersectKeys(curV, g.keys)
			}
			nKeys = len(curV)
		}
	}
	if nKeys == 0 {
		return nil
	}

	// Align each stage's groups with the final key list: gidx[si][ki] is
	// the group of the ki-th surviving key in groups[si]. One merge walk per
	// stage — the surviving keys are a subset of every stage's keys, both
	// sorted.
	gidx := make([][]int32, ns)
	for si := 0; si < ns; si++ {
		idx := make([]int32, nKeys)
		j := 0
		if ip.intKeys {
			keys := groups[si].ikeys
			for ki, k := range curI {
				for keys[j] != k {
					j++
				}
				idx[ki] = int32(j)
			}
		} else {
			keys := groups[si].keys
			for ki := range curV {
				for Compare(keys[j], curV[ki]) != 0 {
					j++
				}
				idx[ki] = int32(j)
			}
		}
		gidx[si] = idx
	}

	// Emit cross products per surviving key, stages nested in statement
	// order, with the residual conjuncts deciding each tuple. Rows are
	// fetched only for stages the emission actually reads; the rest loop
	// their rowids purely for multiplicity.
	var rec func(ki, si int) (bool, error)
	rec = func(ki, si int) (bool, error) {
		if si == ns {
			ok, err := passesAll(ip.residuals, ev)
			if err != nil {
				return false, err
			}
			if !ok {
				return true, nil
			}
			return emit(), nil
		}
		g := &groups[si]
		gi := gidx[si][ki]
		for _, rowid := range g.rowids[g.offs[gi]:g.offs[gi+1]] {
			if ip.needed[si] {
				row, _ := p.stages[si].tbl.rows.Get(rowid)
				ev.bindings[si].row = row
			}
			cont, err := rec(ki, si+1)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	for ki := 0; ki < nKeys; ki++ {
		cont, err := rec(ki, 0)
		if err != nil {
			return err
		}
		if !cont {
			break
		}
	}
	for si := 0; si < ns; si++ {
		ev.bindings[si].row = nil
	}
	return nil
}
