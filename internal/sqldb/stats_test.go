package sqldb

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

// Property tests for the planner's cardinality statistics: however an index
// tree came to hold its entries — incremental flush maintenance under
// churn, WAL replay, snapshot restore, CREATE INDEX backfill — its stored
// distinct-prefix counts must equal a from-scratch count of the tree.

// verifyStats asserts the property for every index of every table in db's
// committed root.
func verifyStats(t *testing.T, db *DB, ctx string) {
	t.Helper()
	root := db.root.Load()
	for _, tbl := range root.tables {
		for _, ix := range tbl.indexes {
			want := ix.distinctCounts()
			got := ix.stats.distinct
			if len(got) != len(want) {
				t.Fatalf("%s: %s stats width = %d, want %d", ctx, ix.name, len(got), len(want))
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("%s: %s distinct[%d] = %d, want %d (tree len %d)",
						ctx, ix.name, k, got[k], want[k], ix.tree.Len())
				}
			}
		}
	}
}

// churnStatsDB creates a table with single- and multi-column indexes and
// applies seeded random insert/update/delete churn, including multi-
// statement transactions and rollbacks. Small value domains force heavy
// duplication, so distinct counts and row counts diverge — the case the
// estimates exist to tell apart.
func churnStatsDB(t *testing.T, db *DB, rng *rand.Rand, ops int) {
	t.Helper()
	mustExec(t, db, "CREATE TABLE churn (id INTEGER PRIMARY KEY, a INTEGER, b TEXT, c INTEGER)")
	mustExec(t, db, "CREATE INDEX churn_a ON churn (a)")
	mustExec(t, db, "CREATE INDEX churn_ab ON churn (a, b)")
	mustExec(t, db, "CREATE INDEX churn_bca ON churn (b, c, a)")
	next := int64(0)
	val := func() Value {
		if rng.Intn(6) == 0 {
			return Null()
		}
		return Int(int64(rng.Intn(5)))
	}
	sval := func() Value {
		if rng.Intn(6) == 0 {
			return Null()
		}
		return Text(fmt.Sprintf("s%d", rng.Intn(4)))
	}
	one := func(tx *Tx) error {
		switch rng.Intn(4) {
		case 0, 1:
			next++
			_, err := tx.Exec("INSERT INTO churn (id, a, b, c) VALUES (?, ?, ?, ?)",
				Int(next), val(), sval(), val())
			return err
		case 2:
			_, err := tx.Exec("UPDATE churn SET a = ?, b = ? WHERE c = ?", val(), sval(), val())
			return err
		default:
			_, err := tx.Exec("DELETE FROM churn WHERE a = ? AND b = ?", val(), sval())
			return err
		}
	}
	for i := 0; i < ops; i++ {
		if rng.Intn(10) == 0 {
			// A transaction batching several statements; one in three rolls
			// back, which must leave the published stats untouched.
			tx := db.Begin()
			for j := 0; j <= rng.Intn(4); j++ {
				if err := one(tx); err != nil {
					t.Fatal(err)
				}
			}
			if rng.Intn(3) == 0 {
				if err := tx.Rollback(); err != nil {
					t.Fatal(err)
				}
			} else if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := db.Update(one); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStatsConsistentUnderChurn(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			db := New()
			rng := rand.New(rand.NewSource(seed))
			churnStatsDB(t, db, rng, 40)
			verifyStats(t, db, "mid-churn")
			churnStatsDB2(t, db, rng, 160)
			verifyStats(t, db, "post-churn")
		})
	}
}

// churnStatsDB2 continues churn on an already-created schema.
func churnStatsDB2(t *testing.T, db *DB, rng *rand.Rand, ops int) {
	t.Helper()
	for i := 0; i < ops; i++ {
		a, b, c := rng.Intn(5), rng.Intn(4), rng.Intn(5)
		switch rng.Intn(3) {
		case 0:
			mustExec(t, db, "INSERT INTO churn (id, a, b, c) VALUES (?, ?, ?, ?)",
				Int(int64(100000+i)), Int(int64(a)), Text(fmt.Sprintf("s%d", b)), Int(int64(c)))
		case 1:
			mustExec(t, db, "UPDATE churn SET c = ? WHERE a = ?", Int(int64(c)), Int(int64(a)))
		default:
			mustExec(t, db, "DELETE FROM churn WHERE b = ? AND c = ?",
				Text(fmt.Sprintf("s%d", b)), Int(int64(c)))
		}
	}
}

func TestStatsAfterWALReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stats.wal")
	db := New()
	w, _ := openTestWAL(t, path, db, WALOptions{})
	rng := rand.New(rand.NewSource(7))
	churnStatsDB(t, db, rng, 120)
	verifyStats(t, db, "pre-crash")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := New()
	w2, stats := openTestWAL(t, path, db2, WALOptions{})
	defer w2.Close()
	if stats.Applied == 0 {
		t.Fatal("replay applied nothing")
	}
	verifyStats(t, db2, "post-replay")
}

func TestStatsAfterSnapshotRestore(t *testing.T) {
	t.Parallel()
	db := New()
	rng := rand.New(rand.NewSource(11))
	churnStatsDB(t, db, rng, 120)
	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := New()
	if err := db2.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	verifyStats(t, db2, "post-restore")
}

func TestStatsAfterCreateIndexBackfill(t *testing.T) {
	t.Parallel()
	db := New()
	rng := rand.New(rand.NewSource(13))
	churnStatsDB(t, db, rng, 120)
	// Backfill over existing rows, then keep churning on the new index.
	mustExec(t, db, "CREATE INDEX churn_ca ON churn (c, a)")
	verifyStats(t, db, "post-backfill")
	churnStatsDB2(t, db, rng, 80)
	verifyStats(t, db, "post-backfill-churn")
}

// TestStatsRegistryEstimates pins the registry's arithmetic: eqRows is
// rows/distinct clamped to at least one row, and over-long prefixes reuse
// the widest count.
func TestStatsRegistryEstimates(t *testing.T) {
	t.Parallel()
	db := New()
	mustExec(t, db, "CREATE TABLE e (a INTEGER, b INTEGER)")
	mustExec(t, db, "CREATE INDEX e_ab ON e (a, b)")
	for i := 0; i < 60; i++ {
		mustExec(t, db, "INSERT INTO e (a, b) VALUES (?, ?)",
			Int(int64(i%3)), Int(int64(i%12)))
	}
	root := db.root.Load()
	ix := root.indexes["e_ab"]
	if ix == nil {
		t.Fatal("index missing")
	}
	reg := statsRegistry{}
	if got := reg.distinct(ix, 1); got != 3 {
		t.Fatalf("distinct(1) = %v", got)
	}
	if got := reg.distinct(ix, 2); got != 12 {
		t.Fatalf("distinct(2) = %v", got)
	}
	if got := reg.distinct(ix, 5); got != 12 {
		t.Fatalf("distinct(5) clamps to widest = %v", got)
	}
	if got := reg.eqRows(ix, 1); got != 20 {
		t.Fatalf("eqRows(1) = %v", got)
	}
	if got := reg.eqRows(ix, 2); got != 5 {
		t.Fatalf("eqRows(2) = %v", got)
	}
}
