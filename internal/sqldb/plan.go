package sqldb

import (
	"fmt"
	"sort"
)

// Rows is a fully materialized result set.
type Rows struct {
	Columns []string
	Data    [][]Value
}

// accessPath describes how the planner reaches rows of one table.
type accessPath struct {
	tbl *table

	// Index equality scan: idx != nil and eqVals set. When inList is also
	// set, the index is probed once per list value with the key
	// (eqVals..., v) — the multi-point scan behind `col IN (...)`.
	idx    *index
	eqVals []Value
	inList []Value

	// Range scan on idx's first column (idx != nil, eqVals nil).
	rangeLo, rangeHi       *Value
	rangeLoInc, rangeHiInc bool

	fullScan bool
}

func (ap accessPath) String() string {
	switch {
	case ap.idx != nil && ap.inList != nil:
		return fmt.Sprintf("index-in(%s)", ap.idx.name)
	case ap.idx != nil && ap.eqVals != nil:
		return fmt.Sprintf("index-eq(%s)", ap.idx.name)
	case ap.idx != nil:
		return fmt.Sprintf("index-range(%s)", ap.idx.name)
	default:
		return fmt.Sprintf("full-scan(%s)", ap.tbl.name)
	}
}

// scan invokes fn for each rowid selected by the path until fn returns false.
func (ap accessPath) scan(fn func(rowid int64, row Row) bool) {
	lookup := func(rowid int64) bool {
		row, _ := ap.tbl.rows.Get(rowid)
		return fn(rowid, row)
	}
	switch {
	case ap.idx != nil && ap.inList != nil:
		// One equality probe per IN value. The list is deduplicated at plan
		// time, so every matching rowid is visited exactly once.
		probe := make([]Value, len(ap.eqVals)+1)
		copy(probe, ap.eqVals)
		stop := false
		for _, v := range ap.inList {
			probe[len(ap.eqVals)] = v
			ap.idx.scanEqual(probe, func(rowid int64) bool {
				if !lookup(rowid) {
					stop = true
					return false
				}
				return true
			})
			if stop {
				return
			}
		}
	case ap.idx != nil && ap.eqVals != nil:
		ap.idx.scanEqual(ap.eqVals, lookup)
	case ap.idx != nil:
		ap.idx.scanRange(ap.rangeLo, ap.rangeHi, ap.rangeLoInc, ap.rangeHiInc, lookup)
	default:
		ap.tbl.rows.Ascend(fn)
	}
}

// refsOnly reports whether every column reference in ex resolves within the
// aliases set (alias -> table). Unqualified refs match any alias's columns.
func refsOnly(ex Expr, aliases map[string]*table) bool {
	switch x := ex.(type) {
	case *Literal, *Param, nil:
		return true
	case *ColumnRef:
		if x.Table != "" {
			_, ok := aliases[x.Table]
			return ok
		}
		for _, t := range aliases {
			if _, ok := t.colPos[x.Column]; ok {
				return true
			}
		}
		return false
	case *BinaryExpr:
		return refsOnly(x.L, aliases) && refsOnly(x.R, aliases)
	case *UnaryExpr:
		return refsOnly(x.E, aliases)
	case *InExpr:
		if !refsOnly(x.E, aliases) {
			return false
		}
		for _, it := range x.List {
			if !refsOnly(it, aliases) {
				return false
			}
		}
		return true
	case *IsNullExpr:
		return refsOnly(x.E, aliases)
	}
	return false
}

// constExpr reports whether ex can be evaluated without any row bound
// (literals and parameters only).
func constExpr(ex Expr) bool {
	return refsOnly(ex, map[string]*table{})
}

// colOf returns the column position if ex is a reference to a column of the
// table bound under alias.
func colOf(ex Expr, alias string, tbl *table) (int, bool) {
	ref, ok := ex.(*ColumnRef)
	if !ok {
		return 0, false
	}
	if ref.Table != "" && ref.Table != alias {
		return 0, false
	}
	p, ok := tbl.colPos[ref.Column]
	return p, ok
}

// planAccess picks an access path for tbl (bound as alias) from predicates.
// preds must each reference only this table or constants.
func planAccess(tbl *table, alias string, preds []Expr, params []Value) accessPath {
	ev := &env{params: params}
	// Collect col = const equalities, col IN (consts) lists, and range
	// bounds on columns.
	eq := map[int]Value{}
	inLists := map[int][]Value{}
	type bound struct {
		v   Value
		inc bool
	}
	lo := map[int]bound{}
	hi := map[int]bound{}
	for _, p := range preds {
		if in, ok := p.(*InExpr); ok && !in.Not {
			c, ok := colOf(in.E, alias, tbl)
			if !ok {
				continue
			}
			vals := make([]Value, 0, len(in.List))
			usable := true
			for _, item := range in.List {
				if !constExpr(item) {
					usable = false
					break
				}
				v, err := eval(item, ev)
				if err != nil || v.IsNull() {
					usable = false
					break
				}
				dup := false
				for _, u := range vals {
					if Compare(u, v) == 0 {
						dup = true
						break
					}
				}
				if !dup {
					vals = append(vals, v)
				}
			}
			if usable {
				inLists[c] = vals
			}
			continue
		}
		b, ok := p.(*BinaryExpr)
		if !ok {
			continue
		}
		var colPos int
		var val Expr
		var op string
		if c, ok := colOf(b.L, alias, tbl); ok && constExpr(b.R) {
			colPos, val, op = c, b.R, b.Op
		} else if c, ok := colOf(b.R, alias, tbl); ok && constExpr(b.L) {
			colPos, val = c, b.L
			switch b.Op { // flip operator
			case "<":
				op = ">"
			case "<=":
				op = ">="
			case ">":
				op = "<"
			case ">=":
				op = "<="
			default:
				op = b.Op
			}
		} else {
			continue
		}
		v, err := eval(val, ev)
		if err != nil || v.IsNull() {
			continue
		}
		switch op {
		case "=":
			eq[colPos] = v
		case ">":
			lo[colPos] = bound{v, false}
		case ">=":
			lo[colPos] = bound{v, true}
		case "<":
			hi[colPos] = bound{v, false}
		case "<=":
			hi[colPos] = bound{v, true}
		}
	}
	// Longest equality prefix over any index wins; an IN list on the column
	// right after the prefix extends it by one multi-point probe. Ties
	// prefer a pure equality prefix (one probe) over an IN fan-out.
	var bestIx *index
	var bestIn []Value
	bestEq, bestScore := 0, 0
	for _, ix := range tbl.indexes {
		n := 0
		for _, c := range ix.cols {
			if _, ok := eq[c]; ok {
				n++
			} else {
				break
			}
		}
		var inVals []Value
		if n < len(ix.cols) {
			if vals, ok := inLists[ix.cols[n]]; ok {
				inVals = vals
			}
		}
		score := n
		if inVals != nil {
			score++
		}
		if score > bestScore || (score == bestScore && bestIn != nil && inVals == nil) {
			bestIx, bestEq, bestIn, bestScore = ix, n, inVals, score
		}
	}
	if bestIx != nil && bestScore > 0 {
		vals := make([]Value, bestEq)
		for i := 0; i < bestEq; i++ {
			vals[i] = eq[bestIx.cols[i]]
		}
		return accessPath{tbl: tbl, idx: bestIx, eqVals: vals, inList: bestIn}
	}
	// Range on the first column of some index.
	for _, ix := range tbl.indexes {
		c := ix.cols[0]
		l, hasLo := lo[c]
		h, hasHi := hi[c]
		if hasLo || hasHi {
			ap := accessPath{tbl: tbl, idx: ix}
			if hasLo {
				v := l.v
				ap.rangeLo, ap.rangeLoInc = &v, l.inc
			}
			if hasHi {
				v := h.v
				ap.rangeHi, ap.rangeHiInc = &v, h.inc
			}
			return ap
		}
	}
	return accessPath{tbl: tbl, fullScan: true}
}

// stagePlan is the per-stage execution info for a SELECT pipeline.
type stagePlan struct {
	ref  TableRef
	tbl  *table
	join *JoinClause // nil for the FROM stage

	// filters are WHERE/ON conjuncts fully bound once this stage's table is
	// in scope; applied immediately to keep intermediate row counts small.
	filters []Expr

	// For join stages: equality join on an indexed column of this table,
	// probing with the value of probeExpr evaluated against outer bindings.
	joinIdx   *index
	probeExpr Expr

	// Residual ON conjuncts (non-indexable); for LEFT JOIN these decide
	// match/no-match, for INNER they are just filters.
	onResidual []Expr

	// For the FROM stage only: static predicates usable for access planning.
	accessPreds []Expr
}

// executeSelect runs a SELECT against one immutable root. Because the root
// (and every table version reachable from it) is never mutated after
// publication, this needs no locking at all.
func (r *dbRoot) executeSelect(st *SelectStmt, params []Value) (*Rows, error) {
	fromTbl, ok := r.tables[st.From.Table]
	if !ok {
		return nil, fmt.Errorf("sqldb: no such table %q", st.From.Table)
	}
	stages := []stagePlan{{ref: st.From, tbl: fromTbl}}
	aliasSet := map[string]*table{st.From.Alias: fromTbl}
	for i := range st.Joins {
		j := &st.Joins[i]
		jt, ok := r.tables[j.Table.Table]
		if !ok {
			return nil, fmt.Errorf("sqldb: no such table %q", j.Table.Table)
		}
		if _, dup := aliasSet[j.Table.Alias]; dup {
			return nil, fmt.Errorf("sqldb: duplicate table alias %q", j.Table.Alias)
		}
		aliasSet[j.Table.Alias] = jt
		stages = append(stages, stagePlan{ref: j.Table, tbl: jt, join: j})
	}

	// Classify WHERE conjuncts to the earliest stage where they are bound.
	whereStage := make([][]Expr, len(stages))
	var unbound []Expr
	if st.Where != nil {
		for _, c := range conjuncts(st.Where) {
			placed := false
			scope := map[string]*table{}
			for si := range stages {
				scope[stages[si].ref.Alias] = stages[si].tbl
				if refsOnly(c, scope) {
					whereStage[si] = append(whereStage[si], c)
					placed = true
					break
				}
			}
			if !placed {
				unbound = append(unbound, c)
			}
		}
	}
	if len(unbound) > 0 {
		return nil, fmt.Errorf("sqldb: unresolvable predicate %s", exprString(unbound[0]))
	}

	// Stage 0: access planning from its own conjuncts.
	stages[0].accessPreds = whereStage[0]
	stages[0].filters = whereStage[0]

	// Join stages: split ON conjuncts, look for an indexed equality probe.
	for si := 1; si < len(stages); si++ {
		sp := &stages[si]
		sp.filters = whereStage[si]
		outerScope := map[string]*table{}
		for k := 0; k < si; k++ {
			outerScope[stages[k].ref.Alias] = stages[k].tbl
		}
		for _, c := range conjuncts(sp.join.On) {
			if sp.joinIdx == nil {
				if b, ok := c.(*BinaryExpr); ok && b.Op == "=" {
					// new.col = outer-expr
					if p, ok := colOf(b.L, sp.ref.Alias, sp.tbl); ok && refsOnly(b.R, outerScope) {
						if ix := sp.tbl.findIndex([]int{p}); ix != nil {
							sp.joinIdx, sp.probeExpr = ix, b.R
							continue
						}
					}
					if p, ok := colOf(b.R, sp.ref.Alias, sp.tbl); ok && refsOnly(b.L, outerScope) {
						if ix := sp.tbl.findIndex([]int{p}); ix != nil {
							sp.joinIdx, sp.probeExpr = ix, b.L
							continue
						}
					}
				}
			}
			sp.onResidual = append(sp.onResidual, c)
		}
		// Equality predicates on this table alone can also help the probe
		// path; they are already in filters. For LEFT JOIN, WHERE filters on
		// the nullable side must run after the match decision; that ordering
		// is preserved below (filters run after onResidual).
	}

	// Build output schema.
	type outCol struct {
		name string
		// star expansion: binding index + column position; otherwise expr
		bind, pos int
		expr      Expr
		count     bool
	}
	var outs []outCol
	for _, item := range st.Items {
		switch {
		case item.Star:
			for bi := range stages {
				for ci, cd := range stages[bi].tbl.cols {
					name := cd.Name
					if len(stages) > 1 {
						name = stages[bi].ref.Alias + "." + cd.Name
					}
					outs = append(outs, outCol{name: name, bind: bi, pos: ci, expr: nil})
				}
			}
		case item.Count:
			name := item.As
			if name == "" {
				name = "count"
			}
			outs = append(outs, outCol{name: name, count: true})
		default:
			name := item.As
			if name == "" {
				name = exprString(item.Expr)
				if ref, ok := item.Expr.(*ColumnRef); ok {
					name = ref.Column
				}
			}
			outs = append(outs, outCol{name: name, expr: item.Expr, bind: -1})
		}
	}
	countOnly := len(outs) == 1 && outs[0].count

	ev := &env{params: params, bindings: make([]binding, len(stages))}
	for i := range stages {
		ev.bindings[i] = binding{alias: stages[i].ref.Alias, tbl: stages[i].tbl}
	}

	passes := func(filters []Expr) (bool, error) {
		for _, f := range filters {
			v, err := eval(f, ev)
			if err != nil {
				return false, err
			}
			if !truthy(v) {
				return false, nil
			}
		}
		return true, nil
	}

	var resultEnvRows [][]Row // snapshot of binding rows per result tuple
	var execErr error

	// Recursive nested-loop execution over stages.
	var run func(si int) bool // returns false to abort (error)
	emit := func() bool {
		snap := make([]Row, len(stages))
		for i := range ev.bindings {
			snap[i] = ev.bindings[i].row
		}
		resultEnvRows = append(resultEnvRows, snap)
		return true
	}
	run = func(si int) bool {
		if si == len(stages) {
			return emit()
		}
		sp := &stages[si]
		tryRow := func(row Row) (matched bool, cont bool) {
			ev.bindings[si].row = row
			if len(sp.onResidual) > 0 {
				ok, err := passes(sp.onResidual)
				if err != nil {
					execErr = err
					return false, false
				}
				if !ok {
					return false, true
				}
			}
			ok, err := passes(sp.filters)
			if err != nil {
				execErr = err
				return false, false
			}
			if !ok {
				// ON matched but WHERE rejected: counts as a join match for
				// LEFT JOIN purposes, just not emitted.
				return true, true
			}
			return true, run(si + 1)
		}
		anyMatch := false
		if si == 0 {
			ap := planAccess(sp.tbl, sp.ref.Alias, sp.accessPreds, params)
			aborted := false
			ap.scan(func(_ int64, row Row) bool {
				_, cont := tryRow(row)
				if !cont {
					aborted = true
				}
				return cont
			})
			return !aborted
		}
		if sp.joinIdx != nil {
			probe, err := eval(sp.probeExpr, ev)
			if err != nil {
				execErr = err
				return false
			}
			aborted := false
			if !probe.IsNull() {
				sp.joinIdx.scanEqual([]Value{probe}, func(rowid int64) bool {
					row, _ := sp.tbl.rows.Get(rowid)
					m, cont := tryRow(row)
					anyMatch = anyMatch || m
					if !cont {
						aborted = true
					}
					return cont
				})
			}
			if aborted {
				return false
			}
		} else {
			aborted := false
			sp.tbl.rows.Ascend(func(_ int64, row Row) bool {
				m, cont := tryRow(row)
				anyMatch = anyMatch || m
				if !cont {
					aborted = true
				}
				return cont
			})
			if aborted {
				return false
			}
		}
		if !anyMatch && sp.join.Left {
			ev.bindings[si].row = nil
			ok, err := passes(sp.filters)
			if err != nil {
				execErr = err
				return false
			}
			if ok {
				return run(si + 1)
			}
		}
		ev.bindings[si].row = nil
		return true
	}
	if !run(0) && execErr != nil {
		return nil, execErr
	}

	// ORDER BY over the materialized env rows.
	if len(st.OrderBy) > 0 {
		keys := make([][]Value, len(resultEnvRows))
		for i, snap := range resultEnvRows {
			for bi := range ev.bindings {
				ev.bindings[bi].row = snap[bi]
			}
			ks := make([]Value, len(st.OrderBy))
			for ki, ob := range st.OrderBy {
				v, err := eval(ob.Expr, ev)
				if err != nil {
					return nil, err
				}
				ks[ki] = v
			}
			keys[i] = ks
		}
		order := make([]int, len(resultEnvRows))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			ka, kb := keys[order[a]], keys[order[b]]
			for ki := range st.OrderBy {
				c := Compare(ka[ki], kb[ki])
				if c == 0 {
					continue
				}
				if st.OrderBy[ki].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		sorted := make([][]Row, len(resultEnvRows))
		for i, o := range order {
			sorted[i] = resultEnvRows[o]
		}
		resultEnvRows = sorted
	}

	// Projection.
	res := &Rows{Columns: make([]string, len(outs))}
	for i, oc := range outs {
		res.Columns[i] = oc.name
	}
	if countOnly {
		res.Data = [][]Value{{Int(int64(len(resultEnvRows)))}}
		return res, nil
	}
	for _, snap := range resultEnvRows {
		for bi := range ev.bindings {
			ev.bindings[bi].row = snap[bi]
		}
		out := make([]Value, len(outs))
		for i, oc := range outs {
			switch {
			case oc.count:
				out[i] = Int(int64(len(resultEnvRows)))
			case oc.expr != nil:
				v, err := eval(oc.expr, ev)
				if err != nil {
					return nil, err
				}
				out[i] = v
			default:
				if snap[oc.bind] == nil {
					out[i] = Null()
				} else {
					out[i] = snap[oc.bind][oc.pos]
				}
			}
		}
		res.Data = append(res.Data, out)
	}

	if st.Distinct {
		seen := map[string]bool{}
		uniq := res.Data[:0]
		for _, row := range res.Data {
			key := rowKey(row)
			if !seen[key] {
				seen[key] = true
				uniq = append(uniq, row)
			}
		}
		res.Data = uniq
	}

	// LIMIT / OFFSET.
	if st.Offset > 0 {
		if st.Offset >= len(res.Data) {
			res.Data = nil
		} else {
			res.Data = res.Data[st.Offset:]
		}
	}
	if st.Limit >= 0 && st.Limit < len(res.Data) {
		res.Data = res.Data[:st.Limit]
	}
	return res, nil
}

// rowKey builds a collision-safe string key for DISTINCT.
func rowKey(row []Value) string {
	key := ""
	for _, v := range row {
		s := v.String()
		key += fmt.Sprintf("%d:%d:%s|", v.T, len(s), s)
	}
	return key
}

// Explain returns a one-line description of the access path the planner
// would choose for the FROM table of a SELECT. Used by tests and ablation
// benchmarks to assert index usage.
func (db *DB) Explain(sql string, args ...Value) (string, error) {
	st, err := Parse(sql)
	if err != nil {
		return "", err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return "", fmt.Errorf("sqldb: EXPLAIN supports only SELECT")
	}
	root := db.root.Load()
	tbl, ok := root.tables[sel.From.Table]
	if !ok {
		return "", fmt.Errorf("sqldb: no such table %q", sel.From.Table)
	}
	var preds []Expr
	if sel.Where != nil {
		scope := map[string]*table{sel.From.Alias: tbl}
		for _, c := range conjuncts(sel.Where) {
			if refsOnly(c, scope) {
				preds = append(preds, c)
			}
		}
	}
	ap := planAccess(tbl, sel.From.Alias, preds, args)
	return ap.String(), nil
}
