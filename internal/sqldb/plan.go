package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// Query planning is split compile/bind: compileSelect turns a parsed SELECT
// into a selectPlan — a value-free description of how to execute it (which
// index each stage probes, which expressions feed the probe, nested-loop
// versus sorted-set intersection) — and run binds parameter values and
// executes. Plans depend only on the statement shape and the root they were
// compiled against, so the DB layer caches them keyed on the MVCC epoch
// (see DB.plannedSelect): the PR 5 epoch machinery invalidates them for
// free on every commit.
//
// Access-path choices are safe to make symbolically because they are only
// ever optimizations: every stage re-applies its full filter list to each
// candidate row, so a probe merely has to return a superset of the matching
// rows. When a probe expression binds to NULL (or fails to evaluate) at
// execution time, bind degrades to a wider probe and the filters keep the
// result exact.

// Rows is a fully materialized result set.
type Rows struct {
	Columns []string
	Data    [][]Value
}

// accessPath describes how one execution reaches rows of one table: an
// accessSpec with its probe values bound.
type accessPath struct {
	tbl *table

	// Index equality scan: idx != nil and eqVals set. When inList is also
	// set, the index is probed once per list value with the key
	// (eqVals..., v) — the multi-point scan behind `col IN (...)`.
	idx    *index
	eqVals []Value
	inList []Value

	// Range scan on the column right after the eqVals prefix (the first
	// column when eqVals is empty).
	rangeLo, rangeHi       *Value
	rangeLoInc, rangeHiInc bool

	fullScan bool
}

func (ap accessPath) String() string {
	switch {
	case ap.idx != nil && ap.inList != nil:
		return fmt.Sprintf("index-in(%s)", ap.idx.name)
	case ap.idx != nil && (ap.rangeLo != nil || ap.rangeHi != nil):
		return fmt.Sprintf("index-range(%s)", ap.idx.name)
	case ap.idx != nil && ap.eqVals != nil:
		return fmt.Sprintf("index-eq(%s)", ap.idx.name)
	case ap.idx != nil:
		return fmt.Sprintf("index-range(%s)", ap.idx.name)
	default:
		return fmt.Sprintf("full-scan(%s)", ap.tbl.name)
	}
}

// scan invokes fn for each rowid selected by the path until fn returns false.
func (ap accessPath) scan(fn func(rowid int64, row Row) bool) {
	lookup := func(rowid int64) bool {
		row, _ := ap.tbl.rows.Get(rowid)
		return fn(rowid, row)
	}
	switch {
	case ap.idx != nil && ap.inList != nil:
		// One equality probe per IN value. The list is deduplicated at bind
		// time, so every matching rowid is visited exactly once.
		probe := make([]Value, len(ap.eqVals)+1)
		copy(probe, ap.eqVals)
		stop := false
		for _, v := range ap.inList {
			probe[len(ap.eqVals)] = v
			ap.idx.scanEqual(probe, func(rowid int64) bool {
				if !lookup(rowid) {
					stop = true
					return false
				}
				return true
			})
			if stop {
				return
			}
		}
	case ap.idx != nil && (ap.rangeLo != nil || ap.rangeHi != nil):
		ap.idx.scanPrefixRange(ap.eqVals, ap.rangeLo, ap.rangeHi, ap.rangeLoInc, ap.rangeHiInc, lookup)
	case ap.idx != nil && ap.eqVals != nil:
		ap.idx.scanEqual(ap.eqVals, lookup)
	default:
		ap.tbl.rows.Ascend(fn)
	}
}

// accessSpec is the symbolic (value-free) form of an access path: the chosen
// index plus the expressions that will feed its probe slots at bind time.
type accessSpec struct {
	tbl *table
	idx *index

	// eqExprs feed an equality probe on the leading index columns; eqCols
	// holds the table column position each slot probes (parallel slice).
	eqExprs []Expr
	eqCols  []int
	// inExprs are IN-list items probing the column right after the eq
	// prefix (nil when the spec has no IN extension).
	inExprs []Expr
	// loExpr/hiExpr bound a range on the column right after the eq prefix.
	loExpr, hiExpr Expr
	loInc, hiInc   bool

	fullScan bool
}

func (sp accessSpec) String() string {
	switch {
	case sp.idx == nil:
		return fmt.Sprintf("full-scan(%s)", sp.tbl.name)
	case sp.inExprs != nil:
		return fmt.Sprintf("index-in(%s)", sp.idx.name)
	case sp.loExpr != nil || sp.hiExpr != nil:
		return fmt.Sprintf("index-range(%s)", sp.idx.name)
	default:
		return fmt.Sprintf("index-eq(%s)", sp.idx.name)
	}
}

// bind evaluates the spec's probe expressions against params and returns a
// concrete access path. Binding never fails: a probe value that is NULL (it
// can never equal a stored value) or unevaluable degrades the path to a
// wider probe — truncated equality prefix, dropped IN extension, dropped
// range bound, ultimately a full scan — and the stage filters, which always
// re-run on every candidate row, keep the result exact.
func (sp accessSpec) bind(params []Value) accessPath {
	if sp.idx == nil {
		return accessPath{tbl: sp.tbl, fullScan: true}
	}
	ev := &env{params: params}
	vals := make([]Value, 0, len(sp.eqExprs))
	for _, ex := range sp.eqExprs {
		v, err := eval(ex, ev)
		if err != nil || v.IsNull() {
			if len(vals) == 0 {
				return accessPath{tbl: sp.tbl, fullScan: true}
			}
			return accessPath{tbl: sp.tbl, idx: sp.idx, eqVals: vals}
		}
		vals = append(vals, v)
	}
	if sp.inExprs != nil {
		list := make([]Value, 0, len(sp.inExprs))
		for _, item := range sp.inExprs {
			v, err := eval(item, ev)
			if err != nil {
				// Unevaluable item: drop the whole IN extension so the probe
				// stays a superset of what the filter would accept.
				if len(vals) == 0 {
					return accessPath{tbl: sp.tbl, fullScan: true}
				}
				return accessPath{tbl: sp.tbl, idx: sp.idx, eqVals: vals}
			}
			if v.IsNull() {
				continue // a NULL item matches nothing
			}
			dup := false
			for _, u := range list {
				if Compare(u, v) == 0 {
					dup = true
					break
				}
			}
			if !dup {
				list = append(list, v)
			}
		}
		return accessPath{tbl: sp.tbl, idx: sp.idx, eqVals: vals, inList: list}
	}
	if sp.loExpr != nil || sp.hiExpr != nil {
		ap := accessPath{tbl: sp.tbl, idx: sp.idx, eqVals: vals}
		if sp.loExpr != nil {
			if v, err := eval(sp.loExpr, ev); err == nil && !v.IsNull() {
				ap.rangeLo, ap.rangeLoInc = &v, sp.loInc
			}
		}
		if sp.hiExpr != nil {
			if v, err := eval(sp.hiExpr, ev); err == nil && !v.IsNull() {
				ap.rangeHi, ap.rangeHiInc = &v, sp.hiInc
			}
		}
		if ap.rangeLo == nil && ap.rangeHi == nil {
			if len(vals) == 0 {
				return accessPath{tbl: sp.tbl, fullScan: true}
			}
			ap.eqVals = vals
		}
		return ap
	}
	return accessPath{tbl: sp.tbl, idx: sp.idx, eqVals: vals}
}

// refsOnly reports whether every column reference in ex resolves within the
// aliases set (alias -> table). Unqualified refs match any alias's columns.
func refsOnly(ex Expr, aliases map[string]*table) bool {
	switch x := ex.(type) {
	case *Literal, *Param, nil:
		return true
	case *ColumnRef:
		if x.Table != "" {
			_, ok := aliases[x.Table]
			return ok
		}
		for _, t := range aliases {
			if _, ok := t.colPos[x.Column]; ok {
				return true
			}
		}
		return false
	case *BinaryExpr:
		return refsOnly(x.L, aliases) && refsOnly(x.R, aliases)
	case *UnaryExpr:
		return refsOnly(x.E, aliases)
	case *InExpr:
		if !refsOnly(x.E, aliases) {
			return false
		}
		for _, it := range x.List {
			if !refsOnly(it, aliases) {
				return false
			}
		}
		return true
	case *IsNullExpr:
		return refsOnly(x.E, aliases)
	}
	return false
}

// constExpr reports whether ex can be evaluated without any row bound
// (literals and parameters only).
func constExpr(ex Expr) bool {
	return refsOnly(ex, map[string]*table{})
}

// colOf returns the column position if ex is a reference to a column of the
// table bound under alias.
func colOf(ex Expr, alias string, tbl *table) (int, bool) {
	ref, ok := ex.(*ColumnRef)
	if !ok {
		return 0, false
	}
	if ref.Table != "" && ref.Table != alias {
		return 0, false
	}
	p, ok := tbl.colPos[ref.Column]
	return p, ok
}

// planSpec chooses the access spec for tbl (bound as alias) from preds,
// consulting st — never the table's trees — for cardinality. It returns the
// spec and the estimated number of rows it yields. Any usable index beats a
// full scan (a probe is far cheaper than a filtered scan row here, and the
// filters re-run regardless); among index candidates the smallest estimate
// wins, with ties going to the earliest candidate in a fixed enumeration
// order so plans are deterministic.
func planSpec(tbl *table, alias string, preds []Expr, st statsRegistry) (accessSpec, float64) {
	// Collect per-column symbolic slots: the first equality expression, the
	// first all-constant IN list, and range bounds.
	eq := map[int]Expr{}
	inLists := map[int][]Expr{}
	type boundE struct {
		ex  Expr
		inc bool
	}
	lo := map[int]boundE{}
	hi := map[int]boundE{}
	for _, p := range preds {
		if in, ok := p.(*InExpr); ok && !in.Not {
			c, ok := colOf(in.E, alias, tbl)
			if !ok {
				continue
			}
			usable := len(in.List) > 0
			for _, item := range in.List {
				if !constExpr(item) {
					usable = false
					break
				}
			}
			if usable {
				if _, dup := inLists[c]; !dup {
					inLists[c] = in.List
				}
			}
			continue
		}
		b, ok := p.(*BinaryExpr)
		if !ok {
			continue
		}
		var colPos int
		var val Expr
		var op string
		if c, ok := colOf(b.L, alias, tbl); ok && constExpr(b.R) {
			colPos, val, op = c, b.R, b.Op
		} else if c, ok := colOf(b.R, alias, tbl); ok && constExpr(b.L) {
			colPos, val = c, b.L
			switch b.Op { // flip operator
			case "<":
				op = ">"
			case "<=":
				op = ">="
			case ">":
				op = "<"
			case ">=":
				op = "<="
			default:
				op = b.Op
			}
		} else {
			continue
		}
		switch op {
		case "=":
			if _, dup := eq[colPos]; !dup {
				eq[colPos] = val
			}
		case ">":
			if _, dup := lo[colPos]; !dup {
				lo[colPos] = boundE{val, false}
			}
		case ">=":
			if _, dup := lo[colPos]; !dup {
				lo[colPos] = boundE{val, true}
			}
		case "<":
			if _, dup := hi[colPos]; !dup {
				hi[colPos] = boundE{val, false}
			}
		case "<=":
			if _, dup := hi[colPos]; !dup {
				hi[colPos] = boundE{val, true}
			}
		}
	}

	rows := st.tableRows(tbl)
	var best accessSpec
	bestEst := 0.0
	have := false
	consider := func(sp accessSpec, est float64) {
		if !have || est < bestEst {
			best, bestEst, have = sp, est, true
		}
	}
	for _, ix := range tbl.indexes {
		var eqExprs []Expr
		var eqCols []int
		for _, c := range ix.cols {
			ex, ok := eq[c]
			if !ok {
				break
			}
			eqExprs = append(eqExprs, ex)
			eqCols = append(eqCols, c)
		}
		n := len(eqExprs)
		if n < len(ix.cols) {
			next := ix.cols[n]
			if items, ok := inLists[next]; ok {
				consider(accessSpec{tbl: tbl, idx: ix, eqExprs: eqExprs, eqCols: eqCols, inExprs: items},
					st.eqRows(ix, n+1)*float64(len(items)))
			}
			l, hasLo := lo[next]
			h, hasHi := hi[next]
			if hasLo || hasHi {
				sp := accessSpec{tbl: tbl, idx: ix, eqExprs: eqExprs, eqCols: eqCols}
				if hasLo {
					sp.loExpr, sp.loInc = l.ex, l.inc
				}
				if hasHi {
					sp.hiExpr, sp.hiInc = h.ex, h.inc
				}
				base := rows
				if n > 0 {
					base = st.eqRows(ix, n)
				}
				// No histograms: assume a range keeps a third of its base.
				consider(sp, base/3)
			}
		}
		if n > 0 {
			consider(accessSpec{tbl: tbl, idx: ix, eqExprs: eqExprs, eqCols: eqCols}, st.eqRows(ix, n))
		}
	}
	if !have {
		return accessSpec{tbl: tbl, fullScan: true}, rows
	}
	return best, bestEst
}

// stagePlan is the per-stage execution info for a compiled SELECT pipeline.
type stagePlan struct {
	ref  TableRef
	tbl  *table
	join *JoinClause // nil for the FROM stage

	// filters are WHERE/ON conjuncts fully bound once this stage's table is
	// in scope; applied immediately to keep intermediate row counts small.
	filters []Expr

	// For join stages: equality join on an indexed column of this table,
	// probing with the value of probeExpr evaluated against outer bindings.
	joinIdx   *index
	probeExpr Expr

	// Residual ON conjuncts (non-indexable); for LEFT JOIN these decide
	// match/no-match, for INNER they are just filters.
	onResidual []Expr

	// access drives the FROM stage's scan (always a full scan in naive
	// plans). Join stages are reached via joinIdx or a nested full scan.
	access accessSpec
}

// outCol describes one projected output column.
type outCol struct {
	name string
	// star expansion: binding index + column position; otherwise expr
	bind, pos int
	expr      Expr
	count     bool
}

// selectPlan is a compiled SELECT: shape-only, value-free, immutable after
// compilation and therefore safe to cache per epoch and execute from many
// goroutines at once.
type selectPlan struct {
	st        *SelectStmt
	stages    []stagePlan
	outs      []outCol
	countOnly bool
	// inter, when non-nil, replaces nested-loop execution with sorted
	// rowid-set intersection over the stages' join-key equivalence class.
	inter *intersectPlan
}

// compileSelect builds the execution plan for st against this root. With
// naive set, every cost-based choice is disabled — full scans and pure
// nested loops — which is the reference evaluator the planner-parity
// harness diffs against.
func (r *dbRoot) compileSelect(st *SelectStmt, naive bool) (*selectPlan, error) {
	fromTbl, ok := r.tables[st.From.Table]
	if !ok {
		return nil, fmt.Errorf("sqldb: no such table %q", st.From.Table)
	}
	stages := []stagePlan{{ref: st.From, tbl: fromTbl}}
	aliasSet := map[string]*table{st.From.Alias: fromTbl}
	for i := range st.Joins {
		j := &st.Joins[i]
		jt, ok := r.tables[j.Table.Table]
		if !ok {
			return nil, fmt.Errorf("sqldb: no such table %q", j.Table.Table)
		}
		if _, dup := aliasSet[j.Table.Alias]; dup {
			return nil, fmt.Errorf("sqldb: duplicate table alias %q", j.Table.Alias)
		}
		aliasSet[j.Table.Alias] = jt
		stages = append(stages, stagePlan{ref: j.Table, tbl: jt, join: j})
	}

	// Classify WHERE conjuncts to the earliest stage where they are bound.
	whereStage := make([][]Expr, len(stages))
	var unbound []Expr
	if st.Where != nil {
		for _, c := range conjuncts(st.Where) {
			placed := false
			scope := map[string]*table{}
			for si := range stages {
				scope[stages[si].ref.Alias] = stages[si].tbl
				if refsOnly(c, scope) {
					whereStage[si] = append(whereStage[si], c)
					placed = true
					break
				}
			}
			if !placed {
				unbound = append(unbound, c)
			}
		}
	}
	if len(unbound) > 0 {
		return nil, fmt.Errorf("sqldb: unresolvable predicate %s", exprString(unbound[0]))
	}

	stats := statsRegistry{}

	// Stage 0: access planning from its own conjuncts.
	stages[0].filters = whereStage[0]
	if naive {
		stages[0].access = accessSpec{tbl: fromTbl, fullScan: true}
	} else {
		stages[0].access, _ = planSpec(fromTbl, st.From.Alias, whereStage[0], stats)
	}

	// Join stages: split ON conjuncts, look for an indexed equality probe.
	for si := 1; si < len(stages); si++ {
		sp := &stages[si]
		sp.filters = whereStage[si]
		outerScope := map[string]*table{}
		for k := 0; k < si; k++ {
			outerScope[stages[k].ref.Alias] = stages[k].tbl
		}
		for _, c := range conjuncts(sp.join.On) {
			if sp.joinIdx == nil && !naive {
				if b, ok := c.(*BinaryExpr); ok && b.Op == "=" {
					// new.col = outer-expr
					if p, ok := colOf(b.L, sp.ref.Alias, sp.tbl); ok && refsOnly(b.R, outerScope) {
						if ix := sp.tbl.findIndex([]int{p}); ix != nil {
							sp.joinIdx, sp.probeExpr = ix, b.R
							continue
						}
					}
					if p, ok := colOf(b.R, sp.ref.Alias, sp.tbl); ok && refsOnly(b.L, outerScope) {
						if ix := sp.tbl.findIndex([]int{p}); ix != nil {
							sp.joinIdx, sp.probeExpr = ix, b.L
							continue
						}
					}
				}
			}
			sp.onResidual = append(sp.onResidual, c)
		}
		// Equality predicates on this table alone can also help the probe
		// path; they are already in filters. For LEFT JOIN, WHERE filters on
		// the nullable side must run after the match decision; that ordering
		// is preserved by the executor (filters run after onResidual).
	}

	// Build the output schema.
	p := &selectPlan{st: st, stages: stages}
	for _, item := range st.Items {
		switch {
		case item.Star:
			for bi := range stages {
				for ci, cd := range stages[bi].tbl.cols {
					name := cd.Name
					if len(stages) > 1 {
						name = stages[bi].ref.Alias + "." + cd.Name
					}
					p.outs = append(p.outs, outCol{name: name, bind: bi, pos: ci, expr: nil})
				}
			}
		case item.Count:
			name := item.As
			if name == "" {
				name = "count"
			}
			p.outs = append(p.outs, outCol{name: name, count: true})
		default:
			name := item.As
			if name == "" {
				name = exprString(item.Expr)
				if ref, ok := item.Expr.(*ColumnRef); ok {
					name = ref.Column
				}
			}
			p.outs = append(p.outs, outCol{name: name, expr: item.Expr, bind: -1})
		}
	}
	p.countOnly = len(p.outs) == 1 && p.outs[0].count

	if !naive {
		p.planIntersect(stats)
	}
	return p, nil
}

// passesAll evaluates a conjunct list against the env, reporting whether
// every conjunct is true.
func passesAll(filters []Expr, ev *env) (bool, error) {
	for _, f := range filters {
		v, err := eval(f, ev)
		if err != nil {
			return false, err
		}
		if !truthy(v) {
			return false, nil
		}
	}
	return true, nil
}

// run executes the compiled plan with the given parameter values. The plan
// itself is read-only; all per-execution state lives here.
func (p *selectPlan) run(params []Value) (*Rows, error) {
	stages := p.stages
	ev := &env{params: params, bindings: make([]binding, len(stages))}
	for i := range stages {
		ev.bindings[i] = binding{alias: stages[i].ref.Alias, tbl: stages[i].tbl}
	}

	var resultEnvRows [][]Row // snapshot of binding rows per result tuple
	emit := func() bool {
		snap := make([]Row, len(stages))
		for i := range ev.bindings {
			snap[i] = ev.bindings[i].row
		}
		resultEnvRows = append(resultEnvRows, snap)
		return true
	}

	if p.inter != nil {
		if err := p.runIntersect(ev, emit); err != nil {
			return nil, err
		}
	} else if err := p.runNested(ev, params, emit); err != nil {
		return nil, err
	}

	// ORDER BY over the materialized env rows.
	if len(p.st.OrderBy) > 0 {
		keys := make([][]Value, len(resultEnvRows))
		for i, snap := range resultEnvRows {
			for bi := range ev.bindings {
				ev.bindings[bi].row = snap[bi]
			}
			ks := make([]Value, len(p.st.OrderBy))
			for ki, ob := range p.st.OrderBy {
				v, err := eval(ob.Expr, ev)
				if err != nil {
					return nil, err
				}
				ks[ki] = v
			}
			keys[i] = ks
		}
		order := make([]int, len(resultEnvRows))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			ka, kb := keys[order[a]], keys[order[b]]
			for ki := range p.st.OrderBy {
				c := Compare(ka[ki], kb[ki])
				if c == 0 {
					continue
				}
				if p.st.OrderBy[ki].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		sorted := make([][]Row, len(resultEnvRows))
		for i, o := range order {
			sorted[i] = resultEnvRows[o]
		}
		resultEnvRows = sorted
	}

	// Projection.
	res := &Rows{Columns: make([]string, len(p.outs))}
	for i, oc := range p.outs {
		res.Columns[i] = oc.name
	}
	if p.countOnly {
		res.Data = [][]Value{{Int(int64(len(resultEnvRows)))}}
		return res, nil
	}
	for _, snap := range resultEnvRows {
		for bi := range ev.bindings {
			ev.bindings[bi].row = snap[bi]
		}
		out := make([]Value, len(p.outs))
		for i, oc := range p.outs {
			switch {
			case oc.count:
				out[i] = Int(int64(len(resultEnvRows)))
			case oc.expr != nil:
				v, err := eval(oc.expr, ev)
				if err != nil {
					return nil, err
				}
				out[i] = v
			default:
				if snap[oc.bind] == nil {
					out[i] = Null()
				} else {
					out[i] = snap[oc.bind][oc.pos]
				}
			}
		}
		res.Data = append(res.Data, out)
	}

	if p.st.Distinct {
		seen := map[string]bool{}
		uniq := res.Data[:0]
		for _, row := range res.Data {
			key := rowKey(row)
			if !seen[key] {
				seen[key] = true
				uniq = append(uniq, row)
			}
		}
		res.Data = uniq
	}

	// LIMIT / OFFSET.
	if p.st.Offset > 0 {
		if p.st.Offset >= len(res.Data) {
			res.Data = nil
		} else {
			res.Data = res.Data[p.st.Offset:]
		}
	}
	if p.st.Limit >= 0 && p.st.Limit < len(res.Data) {
		res.Data = res.Data[:p.st.Limit]
	}
	return res, nil
}

// runNested is the nested-loop executor: recursive index-probe (or scan)
// joins in statement order, with LEFT JOIN null-row handling.
func (p *selectPlan) runNested(ev *env, params []Value, emit func() bool) error {
	stages := p.stages
	var execErr error
	var run func(si int) bool // returns false to abort (error)
	run = func(si int) bool {
		if si == len(stages) {
			return emit()
		}
		sp := &stages[si]
		tryRow := func(row Row) (matched bool, cont bool) {
			ev.bindings[si].row = row
			if len(sp.onResidual) > 0 {
				ok, err := passesAll(sp.onResidual, ev)
				if err != nil {
					execErr = err
					return false, false
				}
				if !ok {
					return false, true
				}
			}
			ok, err := passesAll(sp.filters, ev)
			if err != nil {
				execErr = err
				return false, false
			}
			if !ok {
				// ON matched but WHERE rejected: counts as a join match for
				// LEFT JOIN purposes, just not emitted.
				return true, true
			}
			return true, run(si + 1)
		}
		anyMatch := false
		if si == 0 {
			ap := sp.access.bind(params)
			aborted := false
			ap.scan(func(_ int64, row Row) bool {
				_, cont := tryRow(row)
				if !cont {
					aborted = true
				}
				return cont
			})
			return !aborted
		}
		if sp.joinIdx != nil {
			probe, err := eval(sp.probeExpr, ev)
			if err != nil {
				execErr = err
				return false
			}
			aborted := false
			if !probe.IsNull() {
				sp.joinIdx.scanEqual([]Value{probe}, func(rowid int64) bool {
					row, _ := sp.tbl.rows.Get(rowid)
					m, cont := tryRow(row)
					anyMatch = anyMatch || m
					if !cont {
						aborted = true
					}
					return cont
				})
			}
			if aborted {
				return false
			}
		} else {
			aborted := false
			sp.tbl.rows.Ascend(func(_ int64, row Row) bool {
				m, cont := tryRow(row)
				anyMatch = anyMatch || m
				if !cont {
					aborted = true
				}
				return cont
			})
			if aborted {
				return false
			}
		}
		if !anyMatch && sp.join.Left {
			ev.bindings[si].row = nil
			ok, err := passesAll(sp.filters, ev)
			if err != nil {
				execErr = err
				return false
			}
			if ok {
				return run(si + 1)
			}
		}
		ev.bindings[si].row = nil
		return true
	}
	if !run(0) && execErr != nil {
		return execErr
	}
	return nil
}

// executeSelect compiles and runs a SELECT against one immutable root.
// Transactions use it directly (their shadow roots are private, so caching
// would be pointless); DB-level queries go through the epoch-keyed plan
// cache instead.
func (r *dbRoot) executeSelect(st *SelectStmt, params []Value) (*Rows, error) {
	plan, err := r.compileSelect(st, false)
	if err != nil {
		return nil, err
	}
	return plan.run(params)
}

// rowKey builds a collision-safe string key for DISTINCT.
func rowKey(row []Value) string {
	key := ""
	for _, v := range row {
		s := v.String()
		key += fmt.Sprintf("%d:%d:%s|", v.T, len(s), s)
	}
	return key
}

// String renders the plan as one stable line — the EXPLAIN format asserted
// by golden tests. Single-table plans render as the bare access path
// ("index-eq(name)"); nested-loop joins render each stage in execution
// order ("nested[a index-eq(i) -> b probe(j) -> c scan(t)]"); intersection
// plans list the stages most-selective-first with the key-probe stages
// marked ("intersect[a0 index-eq(i) & t key-probe(j)]").
func (p *selectPlan) String() string {
	if p.inter != nil {
		var b strings.Builder
		b.WriteString("intersect[")
		for i := range p.inter.order {
			is := &p.inter.order[i]
			if i > 0 {
				b.WriteString(" & ")
			}
			b.WriteString(p.stages[is.si].ref.Alias)
			b.WriteByte(' ')
			if is.probe {
				b.WriteString("key-probe(" + is.probeIdx.name + ")")
			} else {
				b.WriteString(is.access.String())
			}
		}
		b.WriteString("]")
		return b.String()
	}
	if len(p.stages) == 1 {
		return p.stages[0].access.String()
	}
	var b strings.Builder
	b.WriteString("nested[")
	for si := range p.stages {
		if si > 0 {
			b.WriteString(" -> ")
		}
		sp := &p.stages[si]
		b.WriteString(sp.ref.Alias)
		b.WriteByte(' ')
		switch {
		case si == 0:
			b.WriteString(sp.access.String())
		case sp.joinIdx != nil:
			b.WriteString("probe(" + sp.joinIdx.name + ")")
		default:
			b.WriteString("scan(" + sp.tbl.name + ")")
		}
	}
	b.WriteString("]")
	return b.String()
}

// Explain returns the one-line plan rendering for a SELECT (see
// selectPlan.String). Planning is value-free, so trailing args are accepted
// for compatibility but do not influence the plan.
func (db *DB) Explain(sql string, args ...Value) (string, error) {
	st, err := Parse(sql)
	if err != nil {
		return "", err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return "", fmt.Errorf("sqldb: EXPLAIN supports only SELECT")
	}
	root := db.root.Load()
	plan, err := db.plannedSelect(sql, sel, root)
	if err != nil {
		return "", err
	}
	return plan.String(), nil
}
