package sqldb

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestSnapshotRoundTrip(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE INDEX files_size ON files (size)")
	base := time.Date(2003, 11, 15, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 500; i++ {
		mustExec(t, db, "INSERT INTO files (name, size, score, valid, created) VALUES (?, ?, ?, ?, ?)",
			Text(strings.Repeat("f", 1+i%7)+Int(int64(i)).String()),
			Int(int64(i)), Float(float64(i)/3), Bool(i%2 == 0), Time(base.Add(time.Duration(i)*time.Hour)))
	}
	mustExec(t, db, "DELETE FROM files WHERE size = 250") // leave a rowid hole

	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := New()
	if err := db2.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Same row count.
	n1, _ := db.RowCount("files")
	n2, _ := db2.RowCount("files")
	if n1 != n2 || n2 != 499 {
		t.Fatalf("counts: %d vs %d", n1, n2)
	}
	// Indexed lookups work (indexes rebuilt).
	rows := mustQuery(t, db2, "SELECT name, score, created FROM files WHERE size = ?", Int(123))
	if len(rows.Data) != 1 {
		t.Fatalf("indexed lookup = %v", rows.Data)
	}
	if rows.Data[0][1].Float() != 41 || rows.Data[0][2].Time().Hour() != (9+123)%24 {
		t.Fatalf("values = %v", rows.Data[0])
	}
	// Unique constraints still enforced.
	name := rows.Data[0][0].S
	if _, err := db2.Exec("INSERT INTO files (name) VALUES (?)", Text(name)); err == nil {
		t.Fatal("unique constraint lost across snapshot")
	}
	// Autoincrement continues past the old values.
	res, err := db2.Exec("INSERT INTO files (name) VALUES ('fresh')")
	if err != nil {
		t.Fatal(err)
	}
	// 500 rows were inserted pre-snapshot, so the next id is 501. The failed
	// unique insert above burns nothing: under MVCC a failed statement's
	// shadow state — autoincrement bump included — is discarded wholesale.
	if res.LastInsertID != 501 {
		t.Fatalf("autoinc after restore = %d, want 501", res.LastInsertID)
	}
	// Deleted row stays deleted.
	rows = mustQuery(t, db2, "SELECT * FROM files WHERE size = 250")
	if len(rows.Data) != 0 {
		t.Fatal("deleted row resurrected")
	}
}

func TestSnapshotEmptyDatabase(t *testing.T) {
	db := New()
	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := New()
	if err := db2.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if len(db2.Tables()) != 0 {
		t.Fatalf("tables = %v", db2.Tables())
	}
}

func TestSnapshotCollisionRejected(t *testing.T) {
	db := newTestDB(t)
	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	// Loading into a database that already has the table fails cleanly.
	if err := db.LoadSnapshot(&buf); err == nil {
		t.Fatal("colliding load succeeded")
	}
}

func TestSnapshotGarbageRejected(t *testing.T) {
	db := New()
	if err := db.LoadSnapshot(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage stream accepted")
	}
}

func TestSnapshotNullsPreserved(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b TEXT)")
	mustExec(t, db, "INSERT INTO t (a, b) VALUES (1, NULL), (NULL, 'x')")
	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := New()
	if err := db2.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	rows := mustQuery(t, db2, "SELECT COUNT(*) FROM t WHERE b IS NULL")
	if rows.Data[0][0].Int() != 1 {
		t.Fatalf("null b count = %v", rows.Data[0][0])
	}
	rows = mustQuery(t, db2, "SELECT COUNT(*) FROM t WHERE a IS NULL")
	if rows.Data[0][0].Int() != 1 {
		t.Fatalf("null a count = %v", rows.Data[0][0])
	}
}
