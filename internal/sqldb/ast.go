package sqldb

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTableStmt is CREATE TABLE [IF NOT EXISTS] name (columns...).
type CreateTableStmt struct {
	Name        string
	IfNotExists bool
	Columns     []ColumnDef
}

// ColumnDef describes one column in a CREATE TABLE.
type ColumnDef struct {
	Name          string
	Type          Type
	NotNull       bool
	PrimaryKey    bool
	AutoIncrement bool
	Unique        bool
}

// CreateIndexStmt is CREATE [UNIQUE] INDEX [IF NOT EXISTS] name ON table (cols...).
type CreateIndexStmt struct {
	Name        string
	Table       string
	Columns     []string
	Unique      bool
	IfNotExists bool
}

// DropTableStmt is DROP TABLE [IF EXISTS] name.
type DropTableStmt struct {
	Name     string
	IfExists bool
}

// DropIndexStmt is DROP INDEX name.
type DropIndexStmt struct {
	Name string
}

// InsertStmt is INSERT INTO table (cols) VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

// UpdateStmt is UPDATE table SET col = expr, ... [WHERE expr].
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr // nil means all rows
}

// Assignment is one col = expr clause of an UPDATE.
type Assignment struct {
	Column string
	Value  Expr
}

// DeleteStmt is DELETE FROM table [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Expr
}

// SelectStmt is SELECT [DISTINCT] items FROM table [alias] [JOIN ...]
// [WHERE expr] [ORDER BY col [ASC|DESC], ...] [LIMIT n [OFFSET m]].
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef
	Joins    []JoinClause
	Where    Expr
	OrderBy  []OrderKey
	Limit    int // -1 means no limit
	Offset   int
}

// SelectItem is one projected expression. Star selects every column of
// every table in FROM order.
type SelectItem struct {
	Star  bool
	Count bool // COUNT(*)
	Expr  Expr
	As    string
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Table string
	Alias string // defaults to Table
}

// JoinClause is [INNER|LEFT] JOIN table [alias] ON expr.
type JoinClause struct {
	Left  bool
	Table TableRef
	On    Expr
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*DropIndexStmt) stmt()   {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*SelectStmt) stmt()      {}

// Expr is a SQL expression tree node.
type Expr interface{ expr() }

// Literal is a constant value.
type Literal struct{ Val Value }

// Param is a ? placeholder, numbered left to right from 0.
type Param struct{ Index int }

// ColumnRef names a column, optionally qualified by table alias.
type ColumnRef struct {
	Table  string // "" if unqualified
	Column string
}

// BinaryExpr applies Op to two operands. Ops: = != < <= > >= AND OR LIKE.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr applies Op to one operand. Ops: NOT.
type UnaryExpr struct {
	Op string
	E  Expr
}

// InExpr is "e IN (list...)" or its negation.
type InExpr struct {
	E    Expr
	List []Expr
	Not  bool
}

// IsNullExpr is "e IS [NOT] NULL".
type IsNullExpr struct {
	E   Expr
	Not bool
}

func (*Literal) expr()    {}
func (*Param) expr()      {}
func (*ColumnRef) expr()  {}
func (*BinaryExpr) expr() {}
func (*UnaryExpr) expr()  {}
func (*InExpr) expr()     {}
func (*IsNullExpr) expr() {}
