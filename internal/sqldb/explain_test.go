package sqldb

import (
	"fmt"
	"testing"
)

// EXPLAIN golden tests. The one-line plan rendering (selectPlan.String) is
// deliberately load-bearing test surface: a stats or planner regression
// that flips an access path fails these goldens loudly instead of only
// showing up as a slow benchmark. The schema mirrors the MCS EAV shape —
// an object table with a rowid primary key and an attribute table with a
// covering (key, type-discriminated value, object) index.

func setupExplainDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(t, db, "CREATE TABLE obj (id INTEGER PRIMARY KEY, name TEXT)")
	mustExec(t, db, "CREATE TABLE kv (oid INTEGER, k TEXT, v INTEGER)")
	mustExec(t, db, "CREATE INDEX kv_oid ON kv (oid)")
	mustExec(t, db, "CREATE INDEX kv_kvo ON kv (k, v, oid)")
	for oid := 1; oid <= 40; oid++ {
		mustExec(t, db, "INSERT INTO obj (id, name) VALUES (?, ?)",
			Int(int64(oid)), Text(fmt.Sprintf("o%02d", oid)))
		for k := 0; k < 4; k++ {
			mustExec(t, db, "INSERT INTO kv (oid, k, v) VALUES (?, ?, ?)",
				Int(int64(oid)), Text(fmt.Sprintf("k%d", k)), Int(int64(oid%5)))
		}
	}
	return db
}

func TestExplainGoldens(t *testing.T) {
	t.Parallel()
	db := setupExplainDB(t)
	cases := []struct {
		name string
		sql  string
		want string
	}{
		{"eq prefix", "SELECT * FROM kv WHERE k = 'k0'", "index-eq(kv_kvo)"},
		{"prefix range", "SELECT * FROM kv WHERE k = 'k0' AND v < 3", "index-range(kv_kvo)"},
		{"in list", "SELECT * FROM kv WHERE k IN ('k0', 'k1')", "index-in(kv_kvo)"},
		{"no leading column", "SELECT * FROM kv WHERE v = 1", "full-scan(kv)"},
		{
			// The Fig. 11 shape: attribute stages intersect on oid, and the
			// object table — no local predicates, so its own access would be
			// a full scan — is reached by key probes into its PK index.
			"EAV intersection with key probe",
			`SELECT DISTINCT o.name FROM kv a0
				JOIN obj o ON o.id = a0.oid
				JOIN kv a1 ON a1.oid = a0.oid
				WHERE a0.k = 'k0' AND a0.v = 2 AND a1.k = 'k1' AND a1.v = 2`,
			"intersect[a0 index-eq(kv_kvo) & a1 index-eq(kv_kvo) & o key-probe(obj_id_key)]",
		},
		{
			// LEFT JOIN disqualifies intersection; the nested executor keeps
			// the join-key probe.
			"left join stays nested",
			"SELECT * FROM obj o LEFT JOIN kv a ON a.oid = o.id",
			"nested[o full-scan(obj) -> a probe(kv_oid)]",
		},
		{
			// A cross-stage residual (inequality) cannot be consumed by the
			// key grouping but must not disqualify the intersection.
			"intersection with residual",
			`SELECT o.name FROM kv a0 JOIN obj o ON o.id = a0.oid
				WHERE a0.k = 'k0' AND a0.v = 2 AND o.name >= 'o10'`,
			"intersect[a0 index-eq(kv_kvo) & o key-probe(obj_id_key)]",
		},
	}
	for _, tc := range cases {
		plan, err := db.Explain(tc.sql)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if plan != tc.want {
			t.Errorf("%s:\n  got  %s\n  want %s", tc.name, plan, tc.want)
		}
	}
}

// TestExplainPlanCacheEpoch pins the contract the EXPLAIN surface and plan
// cache share: plans are cached per MVCC epoch, so a schema or data change
// that advances the epoch must recompile — and can flip — the plan.
func TestExplainPlanCacheEpoch(t *testing.T) {
	t.Parallel()
	db := New()
	mustExec(t, db, "CREATE TABLE kv (oid INTEGER, k TEXT, v INTEGER)")
	const q = "SELECT * FROM kv WHERE k = 'k0'"
	plan, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan != "full-scan(kv)" {
		t.Fatalf("pre-index plan = %s", plan)
	}
	mustExec(t, db, "CREATE INDEX kv_kvo ON kv (k, v, oid)")
	plan, err = db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan != "index-eq(kv_kvo)" {
		t.Fatalf("post-index plan = %s (stale cached plan?)", plan)
	}
}
