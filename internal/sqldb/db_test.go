package sqldb

import (
	"strings"
	"testing"
	"time"
)

func mustExec(t *testing.T, db *DB, sql string, args ...Value) Result {
	t.Helper()
	res, err := db.Exec(sql, args...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func mustQuery(t *testing.T, db *DB, sql string, args ...Value) *Rows {
	t.Helper()
	rows, err := db.Query(sql, args...)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return rows
}

func newTestDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(t, db, `CREATE TABLE files (
		id INTEGER PRIMARY KEY AUTOINCREMENT,
		name TEXT NOT NULL UNIQUE,
		size INTEGER,
		score FLOAT,
		valid BOOLEAN,
		created DATETIME
	)`)
	return db
}

func TestCreateTableAndInsert(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db,
		"INSERT INTO files (name, size, valid) VALUES ('a.dat', 100, TRUE)")
	if res.RowsAffected != 1 {
		t.Fatalf("RowsAffected = %d, want 1", res.RowsAffected)
	}
	if res.LastInsertID != 1 {
		t.Fatalf("LastInsertID = %d, want 1", res.LastInsertID)
	}
	res = mustExec(t, db,
		"INSERT INTO files (name, size) VALUES ('b.dat', 200), ('c.dat', 300)")
	if res.RowsAffected != 2 || res.LastInsertID != 3 {
		t.Fatalf("multi-insert got %+v", res)
	}
}

func TestCreateTableIfNotExists(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec("CREATE TABLE files (id INTEGER)"); err == nil {
		t.Fatal("duplicate CREATE TABLE did not fail")
	}
	mustExec(t, db, "CREATE TABLE IF NOT EXISTS files (id INTEGER)")
}

func TestInsertTypeChecking(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec("INSERT INTO files (name, size) VALUES ('x', 'not a number')"); err == nil {
		t.Fatal("type mismatch insert did not fail")
	}
	if _, err := db.Exec("INSERT INTO files (size) VALUES (1)"); err == nil {
		t.Fatal("NOT NULL violation did not fail")
	}
	if _, err := db.Exec("INSERT INTO files (name, nosuch) VALUES ('x', 1)"); err == nil {
		t.Fatal("unknown column did not fail")
	}
	// int -> float widening is allowed
	mustExec(t, db, "INSERT INTO files (name, score) VALUES ('w', 3)")
	rows := mustQuery(t, db, "SELECT score FROM files WHERE name = 'w'")
	if rows.Data[0][0].T != TypeFloat || rows.Data[0][0].Float() != 3 {
		t.Fatalf("widened value = %v", rows.Data[0][0])
	}
}

func TestUniqueConstraint(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "INSERT INTO files (name) VALUES ('dup')")
	if _, err := db.Exec("INSERT INTO files (name) VALUES ('dup')"); err == nil {
		t.Fatal("UNIQUE violation did not fail")
	}
	// After the failure the table must still be consistent.
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM files")
	if rows.Data[0][0].Int() != 1 {
		t.Fatalf("row count after failed insert = %v", rows.Data[0][0])
	}
	mustExec(t, db, "INSERT INTO files (name) VALUES ('ok')")
}

func TestSelectWhereOperators(t *testing.T) {
	db := newTestDB(t)
	for i, name := range []string{"a", "b", "c", "d", "e"} {
		mustExec(t, db, "INSERT INTO files (name, size) VALUES (?, ?)",
			Text(name), Int(int64(i*10)))
	}
	cases := []struct {
		where string
		want  int
	}{
		{"size = 20", 1},
		{"size != 20", 4},
		{"size < 20", 2},
		{"size <= 20", 3},
		{"size > 20", 2},
		{"size >= 20", 3},
		{"size > 10 AND size < 40", 2},
		{"size < 10 OR size > 30", 2},
		{"NOT size = 20", 4},
		{"name IN ('a', 'c', 'zzz')", 2},
		{"name NOT IN ('a', 'c')", 3},
		{"name LIKE 'a%'", 1},
		{"name LIKE '%'", 5},
		{"score IS NULL", 5},
		{"score IS NOT NULL", 0},
		{"20 = size", 1},
		{"20 <= size", 3},
	}
	for _, c := range cases {
		rows := mustQuery(t, db, "SELECT id FROM files WHERE "+c.where)
		if len(rows.Data) != c.want {
			t.Errorf("WHERE %s returned %d rows, want %d", c.where, len(rows.Data), c.want)
		}
	}
}

func TestSelectProjection(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "INSERT INTO files (name, size) VALUES ('x', 7)")
	rows := mustQuery(t, db, "SELECT name, size FROM files")
	if len(rows.Columns) != 2 || rows.Columns[0] != "name" || rows.Columns[1] != "size" {
		t.Fatalf("Columns = %v", rows.Columns)
	}
	if rows.Data[0][0].S != "x" || rows.Data[0][1].Int() != 7 {
		t.Fatalf("Data = %v", rows.Data)
	}
	star := mustQuery(t, db, "SELECT * FROM files")
	if len(star.Columns) != 6 {
		t.Fatalf("star Columns = %v", star.Columns)
	}
	aliased := mustQuery(t, db, "SELECT name AS n FROM files")
	if aliased.Columns[0] != "n" {
		t.Fatalf("alias column = %v", aliased.Columns)
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	db := newTestDB(t)
	for _, n := range []int{5, 3, 9, 1, 7} {
		mustExec(t, db, "INSERT INTO files (name, size) VALUES (?, ?)",
			Text(strings.Repeat("x", n)), Int(int64(n)))
	}
	rows := mustQuery(t, db, "SELECT size FROM files ORDER BY size")
	got := []int64{}
	for _, r := range rows.Data {
		got = append(got, r[0].Int())
	}
	want := []int64{1, 3, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ORDER BY ASC = %v", got)
		}
	}
	rows = mustQuery(t, db, "SELECT size FROM files ORDER BY size DESC LIMIT 2")
	if len(rows.Data) != 2 || rows.Data[0][0].Int() != 9 || rows.Data[1][0].Int() != 7 {
		t.Fatalf("ORDER BY DESC LIMIT = %v", rows.Data)
	}
	rows = mustQuery(t, db, "SELECT size FROM files ORDER BY size LIMIT 2 OFFSET 1")
	if len(rows.Data) != 2 || rows.Data[0][0].Int() != 3 || rows.Data[1][0].Int() != 5 {
		t.Fatalf("LIMIT OFFSET = %v", rows.Data)
	}
	rows = mustQuery(t, db, "SELECT size FROM files ORDER BY size LIMIT 10 OFFSET 99")
	if len(rows.Data) != 0 {
		t.Fatalf("past-end OFFSET = %v", rows.Data)
	}
}

func TestCountStar(t *testing.T) {
	db := newTestDB(t)
	for i := 0; i < 4; i++ {
		mustExec(t, db, "INSERT INTO files (name) VALUES (?)", Text(strings.Repeat("a", i+1)))
	}
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM files WHERE size IS NULL")
	if rows.Data[0][0].Int() != 4 {
		t.Fatalf("COUNT(*) = %v", rows.Data[0][0])
	}
	rows = mustQuery(t, db, "SELECT COUNT(*) AS n FROM files WHERE name = 'a'")
	if rows.Columns[0] != "n" || rows.Data[0][0].Int() != 1 {
		t.Fatalf("COUNT AS = %v %v", rows.Columns, rows.Data)
	}
}

func TestDistinctValues(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b TEXT)")
	for _, v := range []int64{1, 2, 2, 3, 3, 3} {
		mustExec(t, db, "INSERT INTO t (a, b) VALUES (?, 'x')", Int(v))
	}
	rows := mustQuery(t, db, "SELECT DISTINCT a FROM t ORDER BY a")
	if len(rows.Data) != 3 {
		t.Fatalf("DISTINCT returned %d rows", len(rows.Data))
	}
}

func TestUpdate(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "INSERT INTO files (name, size) VALUES ('a', 1), ('b', 2), ('c', 3)")
	res := mustExec(t, db, "UPDATE files SET size = 99, valid = TRUE WHERE size >= 2")
	if res.RowsAffected != 2 {
		t.Fatalf("RowsAffected = %d, want 2", res.RowsAffected)
	}
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM files WHERE size = 99")
	if rows.Data[0][0].Int() != 2 {
		t.Fatalf("updated count = %v", rows.Data[0][0])
	}
	// Update through an indexed column keeps the index coherent.
	mustExec(t, db, "UPDATE files SET name = 'renamed' WHERE name = 'a'")
	rows = mustQuery(t, db, "SELECT size FROM files WHERE name = 'renamed'")
	if len(rows.Data) != 1 || rows.Data[0][0].Int() != 1 {
		t.Fatalf("post-rename lookup = %v", rows.Data)
	}
	rows = mustQuery(t, db, "SELECT * FROM files WHERE name = 'a'")
	if len(rows.Data) != 0 {
		t.Fatal("old index entry still visible")
	}
}

func TestUpdateUniqueViolation(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "INSERT INTO files (name) VALUES ('a'), ('b')")
	if _, err := db.Exec("UPDATE files SET name = 'a' WHERE name = 'b'"); err == nil {
		t.Fatal("UPDATE causing UNIQUE violation did not fail")
	}
	// b must be intact.
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM files WHERE name = 'b'")
	if rows.Data[0][0].Int() != 1 {
		t.Fatal("row lost after failed update")
	}
}

func TestDelete(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "INSERT INTO files (name, size) VALUES ('a', 1), ('b', 2), ('c', 3)")
	res := mustExec(t, db, "DELETE FROM files WHERE size > 1")
	if res.RowsAffected != 2 {
		t.Fatalf("RowsAffected = %d, want 2", res.RowsAffected)
	}
	rows := mustQuery(t, db, "SELECT name FROM files")
	if len(rows.Data) != 1 || rows.Data[0][0].S != "a" {
		t.Fatalf("remaining = %v", rows.Data)
	}
	// Deleting and re-inserting the same unique value must work.
	mustExec(t, db, "DELETE FROM files WHERE name = 'a'")
	mustExec(t, db, "INSERT INTO files (name) VALUES ('a')")
}

func TestParameters(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "INSERT INTO files (name, size, created) VALUES (?, ?, ?)",
		Text("p"), Int(42), Time(time.Date(2003, 11, 15, 0, 0, 0, 0, time.UTC)))
	rows := mustQuery(t, db, "SELECT created FROM files WHERE name = ? AND size = ?",
		Text("p"), Int(42))
	if len(rows.Data) != 1 {
		t.Fatalf("param query returned %d rows", len(rows.Data))
	}
	if rows.Data[0][0].Time().Year() != 2003 {
		t.Fatalf("datetime round trip = %v", rows.Data[0][0])
	}
	if _, err := db.Query("SELECT * FROM files WHERE name = ?"); err == nil {
		t.Fatal("missing parameter did not fail")
	}
}

func TestDatetimeCoercionFromText(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "INSERT INTO files (name, created) VALUES ('t', '2003-11-15 12:30:00')")
	rows := mustQuery(t, db, "SELECT created FROM files WHERE name = 't'")
	if got := rows.Data[0][0].Time(); got.Month() != time.November || got.Hour() != 12 {
		t.Fatalf("parsed datetime = %v", got)
	}
	if _, err := db.Exec("INSERT INTO files (name, created) VALUES ('u', 'not a date')"); err == nil {
		t.Fatal("bad datetime literal did not fail")
	}
}

func TestJoinInner(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE c (id INTEGER PRIMARY KEY AUTOINCREMENT, name TEXT)")
	mustExec(t, db, "CREATE TABLE f (id INTEGER PRIMARY KEY AUTOINCREMENT, cid INTEGER, name TEXT)")
	mustExec(t, db, "CREATE INDEX f_cid ON f (cid)")
	mustExec(t, db, "INSERT INTO c (name) VALUES ('col1'), ('col2')")
	mustExec(t, db, "INSERT INTO f (cid, name) VALUES (1, 'a'), (1, 'b'), (2, 'c')")
	rows := mustQuery(t, db, `SELECT f.name, c.name FROM f JOIN c ON c.id = f.cid
		WHERE c.name = 'col1' ORDER BY f.name`)
	if len(rows.Data) != 2 || rows.Data[0][0].S != "a" || rows.Data[1][0].S != "b" {
		t.Fatalf("join result = %v", rows.Data)
	}
}

func TestJoinLeft(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE a (id INTEGER PRIMARY KEY, v TEXT)")
	mustExec(t, db, "CREATE TABLE b (id INTEGER PRIMARY KEY, aid INTEGER, w TEXT)")
	mustExec(t, db, "INSERT INTO a (id, v) VALUES (1, 'one'), (2, 'two')")
	mustExec(t, db, "INSERT INTO b (id, aid, w) VALUES (10, 1, 'x')")
	rows := mustQuery(t, db,
		"SELECT a.v, b.w FROM a LEFT JOIN b ON b.aid = a.id ORDER BY a.v")
	if len(rows.Data) != 2 {
		t.Fatalf("left join rows = %v", rows.Data)
	}
	// 'two' has no match; w must be NULL.
	if rows.Data[1][0].S != "two" || !rows.Data[1][1].IsNull() {
		t.Fatalf("unmatched left join row = %v", rows.Data[1])
	}
}

func TestJoinSelf(t *testing.T) {
	// The EAV complex-query shape: N-way self join on object_id.
	db := New()
	mustExec(t, db, "CREATE TABLE attr (oid INTEGER, k TEXT, v TEXT)")
	mustExec(t, db, "CREATE INDEX attr_kv ON attr (k, v)")
	mustExec(t, db, "CREATE INDEX attr_oid ON attr (oid)")
	for oid := 1; oid <= 50; oid++ {
		for k := 0; k < 5; k++ {
			val := "common"
			if oid%10 == 0 && k == 2 {
				val = "rare"
			}
			mustExec(t, db, "INSERT INTO attr (oid, k, v) VALUES (?, ?, ?)",
				Int(int64(oid)), Text(string(rune('a'+k))), Text(val))
		}
	}
	rows := mustQuery(t, db, `SELECT a0.oid FROM attr a0
		JOIN attr a1 ON a1.oid = a0.oid
		WHERE a0.k = 'c' AND a0.v = 'rare' AND a1.k = 'a' AND a1.v = 'common'
		ORDER BY a0.oid`)
	if len(rows.Data) != 5 {
		t.Fatalf("self-join returned %d rows, want 5: %v", len(rows.Data), rows.Data)
	}
}

func TestExplainIndexSelection(t *testing.T) {
	db := newTestDB(t)
	plan, err := db.Explain("SELECT * FROM files WHERE name = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(plan, "index-eq") {
		t.Fatalf("name equality plan = %s, want index-eq", plan)
	}
	plan, _ = db.Explain("SELECT * FROM files WHERE size = 3")
	if plan != "full-scan(files)" {
		t.Fatalf("unindexed plan = %s", plan)
	}
	mustExec(t, db, "CREATE INDEX files_size ON files (size)")
	plan, _ = db.Explain("SELECT * FROM files WHERE size = 3")
	if !strings.HasPrefix(plan, "index-eq") {
		t.Fatalf("indexed plan = %s", plan)
	}
	plan, _ = db.Explain("SELECT * FROM files WHERE size > 3")
	if !strings.HasPrefix(plan, "index-range") {
		t.Fatalf("range plan = %s", plan)
	}
	plan, _ = db.Explain("SELECT * FROM files WHERE size > 3 AND name = 'x'")
	if !strings.HasPrefix(plan, "index-eq") {
		t.Fatalf("mixed plan = %s, want equality to win", plan)
	}
}

func TestIndexRangeScanCorrectness(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (v INTEGER)")
	mustExec(t, db, "CREATE INDEX t_v ON t (v)")
	for i := 0; i < 100; i++ {
		mustExec(t, db, "INSERT INTO t (v) VALUES (?)", Int(int64(i)))
	}
	for _, c := range []struct {
		where string
		want  int
	}{
		{"v >= 90", 10},
		{"v > 90", 9},
		{"v <= 9", 10},
		{"v < 9", 9},
		{"v >= 10 AND v < 20", 10},
		{"v > 98 AND v < 1", 0},
	} {
		rows := mustQuery(t, db, "SELECT v FROM t WHERE "+c.where)
		if len(rows.Data) != c.want {
			t.Errorf("WHERE %s: %d rows, want %d", c.where, len(rows.Data), c.want)
		}
	}
}

func TestCompositeIndexPrefix(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a TEXT, b INTEGER, c TEXT)")
	mustExec(t, db, "CREATE INDEX t_ab ON t (a, b)")
	for i := 0; i < 30; i++ {
		mustExec(t, db, "INSERT INTO t (a, b, c) VALUES (?, ?, 'z')",
			Text(string(rune('a'+i%3))), Int(int64(i)))
	}
	rows := mustQuery(t, db, "SELECT c FROM t WHERE a = 'b' AND b = 10")
	if len(rows.Data) != 1 {
		t.Fatalf("(a,b) lookup = %d rows", len(rows.Data))
	}
	// Prefix-only use of the composite index.
	rows = mustQuery(t, db, "SELECT c FROM t WHERE a = 'b'")
	if len(rows.Data) != 10 {
		t.Fatalf("prefix lookup = %d rows, want 10", len(rows.Data))
	}
	plan, _ := db.Explain("SELECT c FROM t WHERE a = 'b'")
	if !strings.HasPrefix(plan, "index-eq") {
		t.Fatalf("prefix plan = %s", plan)
	}
}

func TestDropTableAndIndex(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE INDEX files_size ON files (size)")
	mustExec(t, db, "DROP INDEX files_size")
	if _, err := db.Exec("DROP INDEX files_size"); err == nil {
		t.Fatal("double DROP INDEX did not fail")
	}
	mustExec(t, db, "DROP TABLE files")
	if _, err := db.Query("SELECT * FROM files"); err == nil {
		t.Fatal("query after DROP TABLE did not fail")
	}
	mustExec(t, db, "DROP TABLE IF EXISTS files")
}

func TestTransactionCommit(t *testing.T) {
	db := newTestDB(t)
	tx := db.Begin()
	if _, err := tx.Exec("INSERT INTO files (name) VALUES ('in-tx')"); err != nil {
		t.Fatal(err)
	}
	rows, err := tx.Query("SELECT COUNT(*) FROM files")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0].Int() != 1 {
		t.Fatal("tx does not see its own write")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rows = mustQuery(t, db, "SELECT COUNT(*) FROM files")
	if rows.Data[0][0].Int() != 1 {
		t.Fatal("committed write lost")
	}
	if err := tx.Commit(); err != ErrTxDone {
		t.Fatalf("double commit err = %v", err)
	}
}

func TestTransactionRollback(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "INSERT INTO files (name, size) VALUES ('keep', 1)")
	tx := db.Begin()
	tx.Exec("INSERT INTO files (name) VALUES ('tmp')")                //nolint:errcheck
	tx.Exec("UPDATE files SET size = 999 WHERE name = 'keep'")        //nolint:errcheck
	tx.Exec("DELETE FROM files WHERE name = 'keep'")                  //nolint:errcheck
	tx.Exec("INSERT INTO files (name, size) VALUES ('another', 123)") //nolint:errcheck
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	rows := mustQuery(t, db, "SELECT name, size FROM files")
	if len(rows.Data) != 1 || rows.Data[0][0].S != "keep" || rows.Data[0][1].Int() != 1 {
		t.Fatalf("post-rollback state = %v", rows.Data)
	}
	// Indexes must also be restored: lookup by name must work.
	rows = mustQuery(t, db, "SELECT size FROM files WHERE name = 'keep'")
	if len(rows.Data) != 1 {
		t.Fatal("index entry lost across rollback")
	}
	rows = mustQuery(t, db, "SELECT size FROM files WHERE name = 'tmp'")
	if len(rows.Data) != 0 {
		t.Fatal("rolled-back insert visible via index")
	}
}

func TestUpdateHelper(t *testing.T) {
	db := newTestDB(t)
	err := db.Update(func(tx *Tx) error {
		_, err := tx.Exec("INSERT INTO files (name) VALUES ('u')")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	errBoom := db.Update(func(tx *Tx) error {
		tx.Exec("INSERT INTO files (name) VALUES ('boom')") //nolint:errcheck
		return ErrTxDone                                    // any error triggers rollback
	})
	if errBoom == nil {
		t.Fatal("Update swallowed the error")
	}
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM files")
	if rows.Data[0][0].Int() != 1 {
		t.Fatalf("rows after mixed Update calls = %v", rows.Data[0][0])
	}
}

func TestDDLInsideTxRejected(t *testing.T) {
	db := New()
	tx := db.Begin()
	defer tx.Rollback() //nolint:errcheck
	if _, err := tx.Exec("CREATE TABLE nope (id INTEGER)"); err == nil {
		t.Fatal("DDL inside tx did not fail")
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "INSERT INTO files (name, size) VALUES ('x', 0)")
	done := make(chan error, 9)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 200; j++ {
				if _, err := db.Query("SELECT size FROM files WHERE name = 'x'"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	go func() {
		for j := 0; j < 200; j++ {
			if _, err := db.Exec("UPDATE files SET size = ? WHERE name = 'x'", Int(int64(j))); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 9; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestPreparedStatements(t *testing.T) {
	db := newTestDB(t)
	ins, err := db.Prepare("INSERT INTO files (name, size) VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := ins.Exec(Text(string(rune('a'+i))), Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	sel, err := db.Prepare("SELECT name FROM files WHERE size = ?")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sel.Query(Int(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].S != "h" {
		t.Fatalf("prepared query = %v", rows.Data)
	}
}

func TestErrorMessages(t *testing.T) {
	db := New()
	for _, bad := range []string{
		"SELEC * FROM t",
		"SELECT * FROM",
		"INSERT INTO t VALUES",
		"CREATE TABLE t (x NOTATYPE)",
		"SELECT * FROM nosuch",
		"SELECT nosuchcol FROM t2",
	} {
		if _, err := db.Query(bad); err == nil {
			if _, err2 := db.Exec(bad); err2 == nil {
				t.Errorf("statement %q did not fail", bad)
			}
		}
	}
}

func TestQueryRequiresSelect(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Query("DELETE FROM files"); err == nil {
		t.Fatal("Query accepted DELETE")
	}
}
