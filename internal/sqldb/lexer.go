package sqldb

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokParam  // ?
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased; identifiers keep their case
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"TABLE": true, "INDEX": true, "UNIQUE": true, "ON": true, "DROP": true,
	"AND": true, "OR": true, "NOT": true, "NULL": true, "TRUE": true, "FALSE": true,
	"PRIMARY": true, "KEY": true, "AUTOINCREMENT": true, "INTEGER": true,
	"FLOAT": true, "TEXT": true, "BOOLEAN": true, "DATETIME": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true, "LIMIT": true,
	"JOIN": true, "INNER": true, "LEFT": true, "AS": true, "IN": true,
	"IS": true, "LIKE": true, "COUNT": true, "DISTINCT": true, "IF": true,
	"EXISTS": true, "BEGIN": true, "COMMIT": true, "ROLLBACK": true, "OFFSET": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src, returning the token stream ending in tokEOF.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '?':
			l.emit(tokParam, "?")
			l.pos++
		case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
			l.lexNumber()
		case isIdentStart(c):
			l.lexWord()
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(k tokenKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: l.pos})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.pos++
	}
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'') // doubled quote escape
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqldb: unterminated string literal at offset %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if (c == 'e' || c == 'E') && l.pos > start {
			// exponent: e[+-]?digits
			save := l.pos
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
			if l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
					l.pos++
				}
				continue
			}
			l.pos = save
		}
		break
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexWord() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	word := l.src[start:l.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: upper, pos: start})
	} else {
		l.toks = append(l.toks, token{kind: tokIdent, text: word, pos: start})
	}
}

func (l *lexer) lexSymbol() error {
	two := ""
	if l.pos+2 <= len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.emit(tokSymbol, two)
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '=', '<', '>', '*', '.', ';':
		l.emit(tokSymbol, string(c))
		l.pos++
		return nil
	}
	return fmt.Errorf("sqldb: unexpected character %q at offset %d", c, l.pos)
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
