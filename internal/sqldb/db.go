package sqldb

import (
	"errors"
	"fmt"
	"sync"
)

// DB is an in-memory relational database. All methods are safe for
// concurrent use: reads run under a shared lock, writes are serialized.
type DB struct {
	mu      sync.RWMutex
	tables  map[string]*table
	indexes map[string]*index // global index namespace

	// stmtCache memoizes parsed statements by SQL text, the counterpart of
	// the JDBC prepared-statement cache in the original MCS server. DDL is
	// never cached (it is rare and self-invalidating).
	stmtMu    sync.RWMutex
	stmtCache map[string]Statement

	// faultHook, when set, runs once per statement with the statement's
	// verb ("select", "insert", "update", "delete", "ddl") before any lock
	// is taken; a non-nil return aborts the statement with that error (and
	// rolls back an enclosing transaction). Installed only by the chaos
	// fault-injection harness.
	hookMu    sync.RWMutex
	faultHook func(verb string) error
}

// SetFaultHook installs (or, with nil, removes) the per-statement fault
// hook. See the faultHook field for semantics.
func (db *DB) SetFaultHook(fn func(verb string) error) {
	db.hookMu.Lock()
	db.faultHook = fn
	db.hookMu.Unlock()
}

// checkFault consults the fault hook for a parsed statement.
func (db *DB) checkFault(st Statement) error {
	db.hookMu.RLock()
	fn := db.faultHook
	db.hookMu.RUnlock()
	if fn == nil {
		return nil
	}
	return fn(stmtVerb(st))
}

// stmtVerb names a statement class for the fault hook.
func stmtVerb(st Statement) string {
	switch st.(type) {
	case *SelectStmt:
		return "select"
	case *InsertStmt:
		return "insert"
	case *UpdateStmt:
		return "update"
	case *DeleteStmt:
		return "delete"
	default:
		return "ddl"
	}
}

// maxCachedStatements bounds the parse cache; beyond it the cache resets
// (statement texts in MCS are a small fixed set, so this never triggers in
// practice).
const maxCachedStatements = 4096

// parseCached returns the parsed form of sql, caching non-DDL statements.
func (db *DB) parseCached(sql string) (Statement, error) {
	db.stmtMu.RLock()
	st, ok := db.stmtCache[sql]
	db.stmtMu.RUnlock()
	if ok {
		return st, nil
	}
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	switch st.(type) {
	case *CreateTableStmt, *CreateIndexStmt, *DropTableStmt, *DropIndexStmt:
		return st, nil
	}
	db.stmtMu.Lock()
	if len(db.stmtCache) >= maxCachedStatements {
		db.stmtCache = make(map[string]Statement)
	}
	db.stmtCache[sql] = st
	db.stmtMu.Unlock()
	return st, nil
}

// Result reports the outcome of a mutating statement.
type Result struct {
	// LastInsertID is the autoincrement value assigned to the last row
	// inserted by an INSERT into a table with an AUTOINCREMENT column.
	LastInsertID int64
	// RowsAffected counts inserted, updated or deleted rows.
	RowsAffected int
}

// ErrTxDone is returned when using a transaction after Commit or Rollback.
var ErrTxDone = errors.New("sqldb: transaction has already been committed or rolled back")

// New returns an empty database.
func New() *DB {
	return &DB{
		tables:    make(map[string]*table),
		indexes:   make(map[string]*index),
		stmtCache: make(map[string]Statement),
	}
}

// Exec parses and runs a mutating or DDL statement.
func (db *DB) Exec(sql string, args ...Value) (Result, error) {
	st, err := db.parseCached(sql)
	if err != nil {
		return Result{}, err
	}
	if err := db.checkFault(st); err != nil {
		return Result{}, err
	}
	if sel, ok := st.(*SelectStmt); ok {
		// Permit Exec of SELECT for convenience; discard rows.
		db.mu.RLock()
		defer db.mu.RUnlock()
		_, err := db.executeSelect(sel, args)
		return Result{}, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.execLocked(st, args, nil)
}

// Query parses and runs a SELECT, returning the materialized result.
func (db *DB) Query(sql string, args ...Value) (*Rows, error) {
	st, err := db.parseCached(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: Query requires a SELECT statement")
	}
	if err := db.checkFault(st); err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.executeSelect(sel, args)
}

// Stmt is a prepared statement: parsed once, executable many times.
type Stmt struct {
	db *DB
	st Statement
}

// Prepare parses sql for repeated execution.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, st: st}, nil
}

// Exec runs a prepared mutating statement.
func (s *Stmt) Exec(args ...Value) (Result, error) {
	if err := s.db.checkFault(s.st); err != nil {
		return Result{}, err
	}
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	return s.db.execLocked(s.st, args, nil)
}

// Query runs a prepared SELECT.
func (s *Stmt) Query(args ...Value) (*Rows, error) {
	sel, ok := s.st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: Query requires a SELECT statement")
	}
	if err := s.db.checkFault(s.st); err != nil {
		return nil, err
	}
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	return s.db.executeSelect(sel, args)
}

// undoEntry records how to reverse one row mutation.
type undoEntry struct {
	tbl   *table
	kind  byte // 'i' insert, 'd' delete, 'u' update
	rowid int64
	row   Row // deleted or pre-update image
}

// Tx is a serializable read-write transaction. It holds the database write
// lock from Begin until Commit or Rollback, so statements inside it observe
// and produce a consistent snapshot. DDL is not allowed inside transactions.
type Tx struct {
	db   *DB
	undo []undoEntry
	done bool
}

// Begin starts a transaction, blocking until the write lock is available.
func (db *DB) Begin() *Tx {
	db.mu.Lock()
	return &Tx{db: db}
}

// Exec runs a mutating statement inside the transaction.
func (tx *Tx) Exec(sql string, args ...Value) (Result, error) {
	if tx.done {
		return Result{}, ErrTxDone
	}
	st, err := tx.db.parseCached(sql)
	if err != nil {
		return Result{}, err
	}
	switch st.(type) {
	case *CreateTableStmt, *CreateIndexStmt, *DropTableStmt, *DropIndexStmt:
		return Result{}, fmt.Errorf("sqldb: DDL is not allowed inside a transaction")
	}
	if err := tx.db.checkFault(st); err != nil {
		return Result{}, err
	}
	return tx.db.execLocked(st, args, &tx.undo)
}

// Query runs a SELECT inside the transaction, seeing its uncommitted writes.
func (tx *Tx) Query(sql string, args ...Value) (*Rows, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	st, err := tx.db.parseCached(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: Query requires a SELECT statement")
	}
	if err := tx.db.checkFault(st); err != nil {
		return nil, err
	}
	return tx.db.executeSelect(sel, args)
}

// Commit makes the transaction's writes permanent and releases the lock.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	tx.undo = nil
	tx.db.mu.Unlock()
	return nil
}

// Rollback reverses every write made in the transaction and releases the lock.
func (tx *Tx) Rollback() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := tx.undo[i]
		switch u.kind {
		case 'i':
			u.tbl.delete(u.rowid)
		case 'd':
			u.tbl.insertAt(u.rowid, u.row)
		case 'u':
			cur := u.tbl.rows[u.rowid]
			for _, ix := range u.tbl.indexes {
				ix.remove(u.rowid, cur)
			}
			u.tbl.rows[u.rowid] = u.row
			for _, ix := range u.tbl.indexes {
				ix.insert(u.rowid, u.row)
			}
		}
	}
	tx.undo = nil
	tx.db.mu.Unlock()
	return nil
}

// Update runs fn inside a transaction, committing if it returns nil and
// rolling back otherwise (or on panic).
func (db *DB) Update(fn func(tx *Tx) error) error {
	tx := db.Begin()
	defer func() {
		if !tx.done {
			tx.Rollback() //nolint:errcheck // best-effort cleanup on panic
		}
	}()
	if err := fn(tx); err != nil {
		tx.Rollback() //nolint:errcheck // the fn error takes precedence
		return err
	}
	return tx.Commit()
}

// execLocked dispatches a non-SELECT statement; callers hold the write lock.
// When undo is non-nil, every row mutation appends its inverse.
func (db *DB) execLocked(st Statement, args []Value, undo *[]undoEntry) (Result, error) {
	switch s := st.(type) {
	case *CreateTableStmt:
		return db.createTable(s)
	case *CreateIndexStmt:
		return db.createIndex(s)
	case *DropTableStmt:
		return db.dropTable(s)
	case *DropIndexStmt:
		return db.dropIndex(s)
	case *InsertStmt:
		return db.execInsert(s, args, undo)
	case *UpdateStmt:
		return db.execUpdate(s, args, undo)
	case *DeleteStmt:
		return db.execDelete(s, args, undo)
	case *SelectStmt:
		_, err := db.executeSelect(s, args)
		return Result{}, err
	}
	return Result{}, fmt.Errorf("sqldb: unsupported statement %T", st)
}

func (db *DB) createTable(s *CreateTableStmt) (Result, error) {
	if _, exists := db.tables[s.Name]; exists {
		if s.IfNotExists {
			return Result{}, nil
		}
		return Result{}, fmt.Errorf("sqldb: table %q already exists", s.Name)
	}
	t, err := newTable(s)
	if err != nil {
		return Result{}, err
	}
	db.tables[s.Name] = t
	for _, ix := range t.indexes {
		db.indexes[ix.name] = ix
	}
	return Result{}, nil
}

func (db *DB) createIndex(s *CreateIndexStmt) (Result, error) {
	if _, exists := db.indexes[s.Name]; exists {
		if s.IfNotExists {
			return Result{}, nil
		}
		return Result{}, fmt.Errorf("sqldb: index %q already exists", s.Name)
	}
	t, ok := db.tables[s.Table]
	if !ok {
		return Result{}, fmt.Errorf("sqldb: no such table %q", s.Table)
	}
	cols := make([]int, len(s.Columns))
	for i, name := range s.Columns {
		p, err := t.columnPos(name)
		if err != nil {
			return Result{}, err
		}
		cols[i] = p
	}
	ix := newIndex(s.Name, t, cols, s.Unique)
	// Backfill existing rows, verifying uniqueness as we go.
	for rowid, row := range t.rows {
		if err := ix.checkUnique(rowid, row); err != nil {
			return Result{}, err
		}
		ix.insert(rowid, row)
	}
	t.indexes = append(t.indexes, ix)
	db.indexes[s.Name] = ix
	return Result{}, nil
}

func (db *DB) dropTable(s *DropTableStmt) (Result, error) {
	t, ok := db.tables[s.Name]
	if !ok {
		if s.IfExists {
			return Result{}, nil
		}
		return Result{}, fmt.Errorf("sqldb: no such table %q", s.Name)
	}
	for _, ix := range t.indexes {
		delete(db.indexes, ix.name)
	}
	delete(db.tables, s.Name)
	return Result{}, nil
}

func (db *DB) dropIndex(s *DropIndexStmt) (Result, error) {
	ix, ok := db.indexes[s.Name]
	if !ok {
		return Result{}, fmt.Errorf("sqldb: no such index %q", s.Name)
	}
	delete(db.indexes, s.Name)
	t := ix.table
	for i, other := range t.indexes {
		if other == ix {
			t.indexes = append(t.indexes[:i], t.indexes[i+1:]...)
			break
		}
	}
	return Result{}, nil
}

func (db *DB) execInsert(s *InsertStmt, args []Value, undo *[]undoEntry) (Result, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return Result{}, fmt.Errorf("sqldb: no such table %q", s.Table)
	}
	ev := &env{params: args}
	var res Result
	autoCol := -1
	for i, c := range t.cols {
		if c.AutoIncrement {
			autoCol = i
			break
		}
	}
	for _, exprRow := range s.Rows {
		// Evaluate directly into the full-width row: inserts are the hottest
		// write path, and a separate values slice per row doubled its
		// allocations.
		row := make(Row, len(t.cols))
		if s.Columns == nil {
			if len(exprRow) != len(t.cols) {
				return res, fmt.Errorf("sqldb: INSERT into %q has %d values, table has %d columns",
					t.name, len(exprRow), len(t.cols))
			}
			for i, ex := range exprRow {
				v, err := eval(ex, ev)
				if err != nil {
					return res, err
				}
				row[i] = v
			}
		} else {
			if len(s.Columns) != len(exprRow) {
				return res, fmt.Errorf("sqldb: INSERT into %q names %d columns but supplies %d values",
					t.name, len(s.Columns), len(exprRow))
			}
			for i, n := range s.Columns {
				p, err := t.columnPos(n)
				if err != nil {
					return res, err
				}
				v, err := eval(exprRow[i], ev)
				if err != nil {
					return res, err
				}
				row[p] = v
			}
		}
		if err := t.completeRow(row); err != nil {
			return res, err
		}
		rowid, err := t.insert(row)
		if err != nil {
			return res, err
		}
		if undo != nil {
			*undo = append(*undo, undoEntry{tbl: t, kind: 'i', rowid: rowid})
		}
		res.RowsAffected++
		if autoCol >= 0 {
			res.LastInsertID = row[autoCol].I
		}
	}
	return res, nil
}

// matchingRowIDs evaluates where against each row of t (index-accelerated)
// and returns the matching rowids.
func (db *DB) matchingRowIDs(t *table, tableName string, where Expr, args []Value) ([]int64, error) {
	ev := &env{params: args, bindings: []binding{{alias: tableName, tbl: t}}}
	var preds []Expr
	if where != nil {
		scope := map[string]*table{tableName: t}
		for _, c := range conjuncts(where) {
			if !refsOnly(c, scope) {
				return nil, fmt.Errorf("sqldb: unresolvable predicate %s", exprString(c))
			}
			preds = append(preds, c)
		}
	}
	ap := planAccess(t, tableName, preds, args)
	var ids []int64
	var scanErr error
	ap.scan(func(rowid int64, row Row) bool {
		ev.bindings[0].row = row
		for _, p := range preds {
			v, err := eval(p, ev)
			if err != nil {
				scanErr = err
				return false
			}
			if !truthy(v) {
				return true
			}
		}
		ids = append(ids, rowid)
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	return ids, nil
}

func (db *DB) execUpdate(s *UpdateStmt, args []Value, undo *[]undoEntry) (Result, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return Result{}, fmt.Errorf("sqldb: no such table %q", s.Table)
	}
	ids, err := db.matchingRowIDs(t, s.Table, s.Where, args)
	if err != nil {
		return Result{}, err
	}
	ev := &env{params: args, bindings: []binding{{alias: s.Table, tbl: t}}}
	var res Result
	for _, rowid := range ids {
		old := t.rows[rowid]
		ev.bindings[0].row = old
		newRow := old.clone()
		for _, as := range s.Set {
			p, err := t.columnPos(as.Column)
			if err != nil {
				return res, err
			}
			v, err := eval(as.Value, ev)
			if err != nil {
				return res, err
			}
			if v.IsNull() {
				if t.cols[p].NotNull {
					return res, fmt.Errorf("sqldb: NOT NULL constraint on %s.%s", t.name, as.Column)
				}
				newRow[p] = v
				continue
			}
			cv, err := coerce(v, t.cols[p].Type)
			if err != nil {
				return res, fmt.Errorf("%w (column %s.%s)", err, t.name, as.Column)
			}
			newRow[p] = cv
		}
		prev, err := t.update(rowid, newRow)
		if err != nil {
			return res, err
		}
		if undo != nil {
			*undo = append(*undo, undoEntry{tbl: t, kind: 'u', rowid: rowid, row: prev})
		}
		res.RowsAffected++
	}
	return res, nil
}

func (db *DB) execDelete(s *DeleteStmt, args []Value, undo *[]undoEntry) (Result, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return Result{}, fmt.Errorf("sqldb: no such table %q", s.Table)
	}
	ids, err := db.matchingRowIDs(t, s.Table, s.Where, args)
	if err != nil {
		return Result{}, err
	}
	var res Result
	for _, rowid := range ids {
		row, ok := t.delete(rowid)
		if !ok {
			continue
		}
		if undo != nil {
			*undo = append(*undo, undoEntry{tbl: t, kind: 'd', rowid: rowid, row: row})
		}
		res.RowsAffected++
	}
	return res, nil
}

// Tables lists the table names in the database (test/diagnostic helper).
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	return names
}

// RowCount returns the number of rows in a table.
func (db *DB) RowCount(table string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[table]
	if !ok {
		return 0, fmt.Errorf("sqldb: no such table %q", table)
	}
	return len(t.rows), nil
}
