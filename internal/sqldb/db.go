package sqldb

import (
	"errors"
	"fmt"
	"maps"
	"slices"
	"sync"
	"sync/atomic"
)

// DB is an in-memory relational database with a copy-on-write MVCC core.
//
// Committed state lives in an immutable dbRoot swapped atomically on commit:
// readers load the current root with one atomic pointer read and run against
// it wait-free — a Query never blocks behind an open transaction, a DDL
// statement or a snapshot dump. Writers are serialized by a single mutex;
// each builds shadow copies of the tables it touches (cheap O(1) btree
// clones that share nodes with the committed versions) and publishes them
// as the new root on commit. Rollback simply discards the shadow copies.
type DB struct {
	// root is the committed state. It is immutable once stored: no table,
	// index or row reachable from a published root is ever mutated again.
	root atomic.Pointer[dbRoot]

	// wmu serializes writers (transactions, standalone mutating statements,
	// DDL and snapshot loads). Readers never take it.
	wmu sync.Mutex

	// stmtCache memoizes parsed statements by SQL text, the counterpart of
	// the JDBC prepared-statement cache in the original MCS server. DDL is
	// never cached (it is rare and self-invalidating).
	stmtMu    sync.RWMutex
	stmtCache map[string]Statement

	// planCache memoizes compiled SELECT plans by SQL text, each entry
	// stamped with the epoch of the root it was compiled against. Epochs are
	// unique per published root, so a stale plan can never be served: any
	// commit, DDL statement or snapshot load bumps the epoch and the next
	// lookup recompiles. Entries are value-free (see compileSelect), so one
	// cached plan serves every parameter binding and every goroutine.
	planMu    sync.RWMutex
	planCache map[string]planCacheEntry

	// faultHook, when set, runs once per statement with the statement's
	// verb ("select", "insert", "update", "delete", "ddl") before any lock
	// is taken; a non-nil return aborts the statement with that error (and
	// rolls back an enclosing transaction). Installed only by the chaos
	// fault-injection harness.
	hookMu    sync.RWMutex
	faultHook func(verb string) error

	// wal, when attached, receives every commit's redo statements before
	// the root is published, and the commit blocks until a group-commit
	// fsync covers its LSN. Written once at boot under wmu (AttachWAL);
	// read only with wmu held (every writer path holds it).
	wal *WAL
}

// dbRoot is one immutable committed version of the whole database: the
// table set, the global index namespace, the epoch that names it, and the
// LSN of the last logged commit it contains.
type dbRoot struct {
	epoch   uint64
	lsn     uint64
	tables  map[string]*table
	indexes map[string]*index
}

// SetFaultHook installs (or, with nil, removes) the per-statement fault
// hook. See the faultHook field for semantics.
func (db *DB) SetFaultHook(fn func(verb string) error) {
	db.hookMu.Lock()
	db.faultHook = fn
	db.hookMu.Unlock()
}

// checkFault consults the fault hook for a parsed statement.
func (db *DB) checkFault(st Statement) error {
	db.hookMu.RLock()
	fn := db.faultHook
	db.hookMu.RUnlock()
	if fn == nil {
		return nil
	}
	return fn(stmtVerb(st))
}

// stmtVerb names a statement class for the fault hook.
func stmtVerb(st Statement) string {
	switch st.(type) {
	case *SelectStmt:
		return "select"
	case *InsertStmt:
		return "insert"
	case *UpdateStmt:
		return "update"
	case *DeleteStmt:
		return "delete"
	default:
		return "ddl"
	}
}

// maxCachedStatements bounds the parse cache; at the limit one arbitrary
// entry is evicted per insert (statement texts in MCS are a small fixed
// set, so eviction never triggers in practice).
const maxCachedStatements = 4096

// parseCached returns the parsed form of sql, caching non-DDL statements.
func (db *DB) parseCached(sql string) (Statement, error) {
	db.stmtMu.RLock()
	st, ok := db.stmtCache[sql]
	db.stmtMu.RUnlock()
	if ok {
		return st, nil
	}
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	switch st.(type) {
	case *CreateTableStmt, *CreateIndexStmt, *DropTableStmt, *DropIndexStmt:
		return st, nil
	}
	db.stmtMu.Lock()
	if len(db.stmtCache) >= maxCachedStatements {
		for k := range db.stmtCache {
			delete(db.stmtCache, k)
			break
		}
	}
	db.stmtCache[sql] = st
	db.stmtMu.Unlock()
	return st, nil
}

// Result reports the outcome of a mutating statement.
type Result struct {
	// LastInsertID is the autoincrement value assigned to the last row
	// inserted by an INSERT into a table with an AUTOINCREMENT column.
	LastInsertID int64
	// RowsAffected counts inserted, updated or deleted rows.
	RowsAffected int
}

// ErrTxDone is returned when using a transaction after Commit or Rollback.
var ErrTxDone = errors.New("sqldb: transaction has already been committed or rolled back")

// planCacheEntry pairs a compiled plan with the epoch it is valid for.
type planCacheEntry struct {
	epoch uint64
	plan  *selectPlan
}

// maxCachedPlans bounds the plan cache the same way maxCachedStatements
// bounds the parse cache.
const maxCachedPlans = 4096

// plannedSelect returns the compiled plan for sel against root, consulting
// the epoch-keyed cache. Hits are two map reads under an RLock; misses
// compile once and publish for every later query on the same root.
func (db *DB) plannedSelect(sql string, sel *SelectStmt, root *dbRoot) (*selectPlan, error) {
	db.planMu.RLock()
	e, ok := db.planCache[sql]
	db.planMu.RUnlock()
	if ok && e.epoch == root.epoch {
		return e.plan, nil
	}
	plan, err := root.compileSelect(sel, false)
	if err != nil {
		return nil, err
	}
	db.planMu.Lock()
	if len(db.planCache) >= maxCachedPlans {
		for k := range db.planCache {
			delete(db.planCache, k)
			break
		}
	}
	db.planCache[sql] = planCacheEntry{epoch: root.epoch, plan: plan}
	db.planMu.Unlock()
	return plan, nil
}

// New returns an empty database.
func New() *DB {
	db := &DB{
		stmtCache: make(map[string]Statement),
		planCache: make(map[string]planCacheEntry),
	}
	db.root.Store(&dbRoot{
		tables:  make(map[string]*table),
		indexes: make(map[string]*index),
	})
	return db
}

// Epoch returns the commit epoch of the current root. It increases by one
// for every committed transaction, standalone write, DDL statement and
// snapshot load, so derived data tagged with an epoch is valid exactly
// while Epoch() keeps returning the same value.
func (db *DB) Epoch() uint64 { return db.root.Load().epoch }

// LastLSN returns the log sequence number of the last logged commit in the
// current root: 0 until a WAL is attached (or on a root restored from a
// pre-WAL snapshot), then increasing by one per mutating commit.
func (db *DB) LastLSN() uint64 { return db.root.Load().lsn }

// AttachWAL installs a write-ahead log opened (and replayed) by OpenWAL.
// Every subsequent mutating commit appends its statements to w and blocks
// until a group-commit fsync covers it. Attach before accepting traffic;
// commits already in flight when the attach lands are not logged.
func (db *DB) AttachWAL(w *WAL) {
	db.wmu.Lock()
	db.wal = w
	db.wmu.Unlock()
}

// applyWALRecord replays one recovered commit: its statements run in a
// single transaction whose root is stamped with the record's LSN and
// published without re-logging. Replay bypasses the fault hook — recovery
// must not be failable by the chaos harness — and permits DDL, which the
// public Tx API forbids but single-statement commits may have logged.
func (db *DB) applyWALRecord(lsn uint64, stmts []redoStmt) error {
	tx := db.Begin()
	for _, s := range stmts {
		st, err := db.parseCached(s.sql)
		if err != nil {
			tx.Rollback() //nolint:errcheck // the parse error takes precedence
			return err
		}
		if _, err := tx.execStmt(st, s.args); err != nil {
			tx.Rollback() //nolint:errcheck // the statement error takes precedence
			return err
		}
	}
	tx.done = true
	tx.flushWork() // replay bypasses Commit, which normally flushes
	tx.work.lsn = lsn
	db.root.Store(tx.work)
	db.wmu.Unlock()
	return nil
}

// Exec parses and runs a mutating or DDL statement.
func (db *DB) Exec(sql string, args ...Value) (Result, error) {
	st, err := db.parseCached(sql)
	if err != nil {
		return Result{}, err
	}
	if err := db.checkFault(st); err != nil {
		return Result{}, err
	}
	if sel, ok := st.(*SelectStmt); ok {
		// Permit Exec of SELECT for convenience; discard rows.
		_, err := db.querySelect(sql, sel, args)
		return Result{}, err
	}
	return db.execOne(sql, st, args)
}

// querySelect runs a SELECT through the epoch-keyed plan cache against the
// current committed root.
func (db *DB) querySelect(sql string, sel *SelectStmt, args []Value) (*Rows, error) {
	root := db.root.Load()
	plan, err := db.plannedSelect(sql, sel, root)
	if err != nil {
		return nil, err
	}
	return plan.run(args)
}

// execOne runs a single non-SELECT statement as its own transaction.
func (db *DB) execOne(sql string, st Statement, args []Value) (Result, error) {
	tx := db.Begin()
	res, err := tx.execStmt(st, args)
	if err != nil {
		tx.Rollback() //nolint:errcheck // the statement error takes precedence
		return Result{}, err
	}
	tx.noteRedo(sql, st, args)
	return res, tx.Commit()
}

// Query parses and runs a SELECT, returning the materialized result.
// It is wait-free with respect to writers: the current committed root is
// read with a single atomic load and never changes under the query.
func (db *DB) Query(sql string, args ...Value) (*Rows, error) {
	st, err := db.parseCached(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: Query requires a SELECT statement")
	}
	if err := db.checkFault(st); err != nil {
		return nil, err
	}
	return db.querySelect(sql, sel, args)
}

// QueryNaive runs a SELECT with every cost-based planner decision disabled:
// full scans and pure nested loops, never touching the plan cache. It exists
// as the reference evaluator for the differential planner-parity harness —
// any query must return the same multiset of rows through Query and
// QueryNaive — and is deliberately permanent API, not test scaffolding, so
// the oracle cannot silently rot.
func (db *DB) QueryNaive(sql string, args ...Value) (*Rows, error) {
	st, err := db.parseCached(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: Query requires a SELECT statement")
	}
	if err := db.checkFault(st); err != nil {
		return nil, err
	}
	plan, err := db.root.Load().compileSelect(sel, true)
	if err != nil {
		return nil, err
	}
	return plan.run(args)
}

// Stmt is a prepared statement: parsed once, executable many times.
type Stmt struct {
	db  *DB
	sql string
	st  Statement
}

// Prepare parses sql for repeated execution.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, sql: sql, st: st}, nil
}

// Exec runs a prepared mutating statement.
func (s *Stmt) Exec(args ...Value) (Result, error) {
	if err := s.db.checkFault(s.st); err != nil {
		return Result{}, err
	}
	if sel, ok := s.st.(*SelectStmt); ok {
		_, err := s.db.querySelect(s.sql, sel, args)
		return Result{}, err
	}
	return s.db.execOne(s.sql, s.st, args)
}

// Query runs a prepared SELECT; like DB.Query it never blocks on writers.
func (s *Stmt) Query(args ...Value) (*Rows, error) {
	sel, ok := s.st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: Query requires a SELECT statement")
	}
	if err := s.db.checkFault(s.st); err != nil {
		return nil, err
	}
	return s.db.querySelect(s.sql, sel, args)
}

// Tx is a serializable read-write transaction. It holds the writer mutex
// from Begin until Commit or Rollback; its statements run against a private
// shadow root, so the transaction observes its own writes while concurrent
// readers keep seeing the last committed root untouched. Commit publishes
// the shadow root atomically; Rollback discards it. DDL is not allowed
// inside transactions.
type Tx struct {
	db *DB
	// work is the shadow root: table and index maps are copied at Begin,
	// table contents are cloned lazily the first time a table is written.
	work *dbRoot
	// owned marks tables already cloned into work (safe to mutate).
	owned map[string]bool
	done  bool
	// redo accumulates the transaction's mutating statements for the WAL
	// (only while one is attached); lsn is assigned at Commit if the
	// transaction was logged.
	redo []redoStmt
	lsn  uint64
}

// Begin starts a transaction, blocking until the writer mutex is available.
func (db *DB) Begin() *Tx {
	db.wmu.Lock()
	base := db.root.Load()
	return &Tx{
		db: db,
		work: &dbRoot{
			epoch:   base.epoch + 1,
			lsn:     base.lsn,
			tables:  maps.Clone(base.tables),
			indexes: maps.Clone(base.indexes),
		},
		owned: make(map[string]bool),
	}
}

// noteRedo records one successfully executed mutating statement for the
// WAL. SELECTs are never logged; everything else — including statements
// that matched zero rows — is, keeping replay a pure re-execution of the
// committed statement stream. The args slice is cloned because callers may
// reuse theirs.
func (tx *Tx) noteRedo(sql string, st Statement, args []Value) {
	if tx.db.wal == nil {
		return
	}
	if _, ok := st.(*SelectStmt); ok {
		return
	}
	tx.redo = append(tx.redo, redoStmt{sql: sql, args: slices.Clone(args)})
}

// LSN returns the log sequence number Commit assigned to the transaction:
// 0 if it was not logged (no WAL attached, or nothing to log), valid only
// after Commit returns.
func (tx *Tx) LSN() uint64 { return tx.lsn }

// flushWork applies the pending index deltas of every table this
// transaction has cloned. Index maintenance is deferred per table (see
// index.flush); this runs before any statement that scans an index inside
// the transaction and before the shadow root is published, so no root ever
// becomes visible with unapplied deltas.
func (tx *Tx) flushWork() {
	for name := range tx.owned {
		if t, ok := tx.work.tables[name]; ok {
			t.flushIndexes()
		}
	}
}

// writable returns the transaction's private copy of a table, cloning the
// committed version on first touch and re-pointing its indexes in the
// shadow root's namespace.
func (tx *Tx) writable(name string) (*table, error) {
	t, ok := tx.work.tables[name]
	if !ok {
		return nil, fmt.Errorf("sqldb: no such table %q", name)
	}
	if tx.owned[name] {
		return t, nil
	}
	nt := t.clone()
	tx.work.tables[name] = nt
	for _, ix := range nt.indexes {
		tx.work.indexes[ix.name] = ix
	}
	tx.owned[name] = true
	return nt, nil
}

// Exec runs a mutating statement inside the transaction.
func (tx *Tx) Exec(sql string, args ...Value) (Result, error) {
	if tx.done {
		return Result{}, ErrTxDone
	}
	st, err := tx.db.parseCached(sql)
	if err != nil {
		return Result{}, err
	}
	switch st.(type) {
	case *CreateTableStmt, *CreateIndexStmt, *DropTableStmt, *DropIndexStmt:
		return Result{}, fmt.Errorf("sqldb: DDL is not allowed inside a transaction")
	}
	if err := tx.db.checkFault(st); err != nil {
		return Result{}, err
	}
	res, err := tx.execStmt(st, args)
	if err == nil {
		tx.noteRedo(sql, st, args)
	}
	return res, err
}

// Query runs a SELECT inside the transaction, seeing its uncommitted writes.
func (tx *Tx) Query(sql string, args ...Value) (*Rows, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	st, err := tx.db.parseCached(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: Query requires a SELECT statement")
	}
	if err := tx.db.checkFault(st); err != nil {
		return nil, err
	}
	tx.flushWork()
	return tx.work.executeSelect(sel, args)
}

// Commit atomically publishes the transaction's shadow root as the new
// committed state and releases the writer mutex. With a WAL attached, a
// mutating commit first appends its redo record (an append failure aborts
// the commit — nothing is published) and then, after publishing and
// releasing the writer mutex, blocks in group commit until an fsync covers
// its LSN. A returned fsync error means the commit is visible in memory but
// of uncertain durability: callers treat it as failed and retry, which the
// replay cache makes safe.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	tx.flushWork()
	w := tx.db.wal
	if w != nil && len(tx.redo) > 0 {
		lsn := tx.work.lsn + 1
		if err := w.append(lsn, tx.redo); err != nil {
			tx.work = nil
			tx.db.wmu.Unlock()
			return fmt.Errorf("sqldb: commit: %w", err)
		}
		tx.work.lsn = lsn
		tx.lsn = lsn
	}
	tx.db.root.Store(tx.work)
	tx.db.wmu.Unlock()
	if w != nil && tx.lsn > 0 {
		return w.waitDurable(tx.lsn)
	}
	return nil
}

// Rollback discards the transaction's shadow root — nothing was published,
// so there is nothing to undo — and releases the writer mutex.
func (tx *Tx) Rollback() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	tx.work = nil
	tx.db.wmu.Unlock()
	return nil
}

// Update runs fn inside a transaction, committing if it returns nil and
// rolling back otherwise (or on panic).
func (db *DB) Update(fn func(tx *Tx) error) error {
	tx := db.Begin()
	defer func() {
		if !tx.done {
			tx.Rollback() //nolint:errcheck // best-effort cleanup on panic
		}
	}()
	if err := fn(tx); err != nil {
		tx.Rollback() //nolint:errcheck // the fn error takes precedence
		return err
	}
	return tx.Commit()
}

// execStmt dispatches a non-SELECT statement against the shadow root.
func (tx *Tx) execStmt(st Statement, args []Value) (Result, error) {
	switch s := st.(type) {
	case *CreateTableStmt:
		return tx.createTable(s)
	case *CreateIndexStmt:
		return tx.createIndex(s)
	case *DropTableStmt:
		return tx.dropTable(s)
	case *DropIndexStmt:
		return tx.dropIndex(s)
	case *InsertStmt:
		return tx.execInsert(s, args)
	case *UpdateStmt:
		return tx.execUpdate(s, args)
	case *DeleteStmt:
		return tx.execDelete(s, args)
	case *SelectStmt:
		tx.flushWork()
		_, err := tx.work.executeSelect(s, args)
		return Result{}, err
	}
	return Result{}, fmt.Errorf("sqldb: unsupported statement %T", st)
}

func (tx *Tx) createTable(s *CreateTableStmt) (Result, error) {
	if _, exists := tx.work.tables[s.Name]; exists {
		if s.IfNotExists {
			return Result{}, nil
		}
		return Result{}, fmt.Errorf("sqldb: table %q already exists", s.Name)
	}
	t, err := newTable(s)
	if err != nil {
		return Result{}, err
	}
	tx.work.tables[s.Name] = t
	for _, ix := range t.indexes {
		tx.work.indexes[ix.name] = ix
	}
	tx.owned[s.Name] = true
	return Result{}, nil
}

func (tx *Tx) createIndex(s *CreateIndexStmt) (Result, error) {
	if _, exists := tx.work.indexes[s.Name]; exists {
		if s.IfNotExists {
			return Result{}, nil
		}
		return Result{}, fmt.Errorf("sqldb: index %q already exists", s.Name)
	}
	t, err := tx.writable(s.Table)
	if err != nil {
		return Result{}, err
	}
	cols := make([]int, len(s.Columns))
	for i, name := range s.Columns {
		p, err := t.columnPos(name)
		if err != nil {
			return Result{}, err
		}
		cols[i] = p
	}
	ix := newIndex(s.Name, t, cols, s.Unique)
	// Backfill existing rows, verifying uniqueness as we go. The tree is
	// written directly (not via the pending-delta path) so checkUnique's
	// tree probe sees every row backfilled so far without an O(n²) scan of
	// an ever-growing delta list.
	var backfillErr error
	t.rows.Ascend(func(rowid int64, row Row) bool {
		if err := ix.checkUnique(rowid, row); err != nil {
			backfillErr = err
			return false
		}
		ix.tree.Set(ix.keyFor(rowid, row), struct{}{})
		return true
	})
	if backfillErr != nil {
		return Result{}, backfillErr
	}
	ix.recomputeStats() // backfill bypassed the stat-maintaining flush path
	t.indexes = append(t.indexes, ix)
	tx.work.indexes[s.Name] = ix
	return Result{}, nil
}

func (tx *Tx) dropTable(s *DropTableStmt) (Result, error) {
	t, ok := tx.work.tables[s.Name]
	if !ok {
		if s.IfExists {
			return Result{}, nil
		}
		return Result{}, fmt.Errorf("sqldb: no such table %q", s.Name)
	}
	for _, ix := range t.indexes {
		delete(tx.work.indexes, ix.name)
	}
	delete(tx.work.tables, s.Name)
	delete(tx.owned, s.Name)
	return Result{}, nil
}

func (tx *Tx) dropIndex(s *DropIndexStmt) (Result, error) {
	ix, ok := tx.work.indexes[s.Name]
	if !ok {
		return Result{}, fmt.Errorf("sqldb: no such index %q", s.Name)
	}
	t, err := tx.writable(ix.table.name)
	if err != nil {
		return Result{}, err
	}
	for i, other := range t.indexes {
		if other.name == s.Name {
			t.indexes = append(t.indexes[:i], t.indexes[i+1:]...)
			break
		}
	}
	delete(tx.work.indexes, s.Name)
	return Result{}, nil
}

func (tx *Tx) execInsert(s *InsertStmt, args []Value) (Result, error) {
	t, err := tx.writable(s.Table)
	if err != nil {
		return Result{}, err
	}
	ev := &env{params: args}
	var res Result
	autoCol := -1
	for i, c := range t.cols {
		if c.AutoIncrement {
			autoCol = i
			break
		}
	}
	for _, exprRow := range s.Rows {
		// Evaluate directly into the full-width row: inserts are the hottest
		// write path, and a separate values slice per row doubled its
		// allocations.
		row := make(Row, len(t.cols))
		if s.Columns == nil {
			if len(exprRow) != len(t.cols) {
				return res, fmt.Errorf("sqldb: INSERT into %q has %d values, table has %d columns",
					t.name, len(exprRow), len(t.cols))
			}
			for i, ex := range exprRow {
				v, err := eval(ex, ev)
				if err != nil {
					return res, err
				}
				row[i] = v
			}
		} else {
			if len(s.Columns) != len(exprRow) {
				return res, fmt.Errorf("sqldb: INSERT into %q names %d columns but supplies %d values",
					t.name, len(s.Columns), len(exprRow))
			}
			for i, n := range s.Columns {
				p, err := t.columnPos(n)
				if err != nil {
					return res, err
				}
				v, err := eval(exprRow[i], ev)
				if err != nil {
					return res, err
				}
				row[p] = v
			}
		}
		if err := t.completeRow(row); err != nil {
			return res, err
		}
		if _, err := t.insert(row); err != nil {
			return res, err
		}
		res.RowsAffected++
		if autoCol >= 0 {
			res.LastInsertID = row[autoCol].Int()
		}
	}
	return res, nil
}

// matchingRowIDs evaluates where against each row of t (index-accelerated)
// and returns the matching rowids.
func matchingRowIDs(t *table, tableName string, where Expr, args []Value) ([]int64, error) {
	ev := &env{params: args, bindings: []binding{{alias: tableName, tbl: t}}}
	var preds []Expr
	if where != nil {
		scope := map[string]*table{tableName: t}
		for _, c := range conjuncts(where) {
			if !refsOnly(c, scope) {
				return nil, fmt.Errorf("sqldb: unresolvable predicate %s", exprString(c))
			}
			preds = append(preds, c)
		}
	}
	sp, _ := planSpec(t, tableName, preds, statsRegistry{})
	ap := sp.bind(args)
	var ids []int64
	var scanErr error
	ap.scan(func(rowid int64, row Row) bool {
		ev.bindings[0].row = row
		for _, p := range preds {
			v, err := eval(p, ev)
			if err != nil {
				scanErr = err
				return false
			}
			if !truthy(v) {
				return true
			}
		}
		ids = append(ids, rowid)
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	return ids, nil
}

func (tx *Tx) execUpdate(s *UpdateStmt, args []Value) (Result, error) {
	t, err := tx.writable(s.Table)
	if err != nil {
		return Result{}, err
	}
	t.flushIndexes() // matchingRowIDs may probe this table's indexes
	ids, err := matchingRowIDs(t, s.Table, s.Where, args)
	if err != nil {
		return Result{}, err
	}
	ev := &env{params: args, bindings: []binding{{alias: s.Table, tbl: t}}}
	var res Result
	for _, rowid := range ids {
		old, _ := t.rows.Get(rowid)
		ev.bindings[0].row = old
		newRow := old.clone()
		for _, as := range s.Set {
			p, err := t.columnPos(as.Column)
			if err != nil {
				return res, err
			}
			v, err := eval(as.Value, ev)
			if err != nil {
				return res, err
			}
			if v.IsNull() {
				if t.cols[p].NotNull {
					return res, fmt.Errorf("sqldb: NOT NULL constraint on %s.%s", t.name, as.Column)
				}
				newRow[p] = v
				continue
			}
			cv, err := coerce(v, t.cols[p].Type)
			if err != nil {
				return res, fmt.Errorf("%w (column %s.%s)", err, t.name, as.Column)
			}
			newRow[p] = cv
		}
		if _, err := t.update(rowid, newRow); err != nil {
			return res, err
		}
		res.RowsAffected++
	}
	return res, nil
}

func (tx *Tx) execDelete(s *DeleteStmt, args []Value) (Result, error) {
	t, err := tx.writable(s.Table)
	if err != nil {
		return Result{}, err
	}
	t.flushIndexes() // matchingRowIDs may probe this table's indexes
	ids, err := matchingRowIDs(t, s.Table, s.Where, args)
	if err != nil {
		return Result{}, err
	}
	var res Result
	for _, rowid := range ids {
		if _, ok := t.delete(rowid); ok {
			res.RowsAffected++
		}
	}
	return res, nil
}

// Tables lists the table names in the database (test/diagnostic helper).
func (db *DB) Tables() []string {
	root := db.root.Load()
	names := make([]string, 0, len(root.tables))
	for n := range root.tables {
		names = append(names, n)
	}
	return names
}

// RowCount returns the number of rows in a table.
func (db *DB) RowCount(table string) (int, error) {
	root := db.root.Load()
	t, ok := root.tables[table]
	if !ok {
		return 0, fmt.Errorf("sqldb: no such table %q", table)
	}
	return t.rows.Len(), nil
}
