package sqldb

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// Differential planner parity: every generated query runs twice — through
// the cost-based planner (DB.Query: index selection, sorted-set
// intersection, key probes, stats-driven ordering) and through the naive
// evaluator (DB.QueryNaive: full scans, pure nested loops) — and the two
// row multisets must match exactly. The generator covers the planner's
// decision surface: indexed and unindexed columns, INTEGER and TEXT join
// keys (the int64-specialized and generic intersection paths), eq/range/IN
// predicates, IS NULL, OR-disjunctions that defeat index selection, NULL
// data and NULL parameters (bind-time probe degradation), LEFT JOINs
// (which the intersection planner must refuse), DISTINCT, COUNT(*) and
// ORDER BY. Ordering is never asserted — rows are compared as canonical
// sorted multisets — because tie order between plans is unspecified.

// parityCol is one generated column: its name, declared type, and a small
// value domain the data and predicates both draw from (small domains force
// collisions, which is what makes joins and predicates selective enough to
// be interesting).
type parityCol struct {
	name   string
	typ    Type
	domain []Value
}

func parityDomains(rng *rand.Rand) []parityCol {
	ints := func(n int) []Value {
		vs := make([]Value, n)
		for i := range vs {
			vs[i] = Int(int64(i))
		}
		return vs
	}
	texts := []Value{Text("ash"), Text("birch"), Text("cedar"), Text("fir"), Text("oak")}
	floats := []Value{Float(-1.5), Float(0), Float(0.5), Float(2), Float(10.25)}
	return []parityCol{
		{name: "k", typ: TypeInt, domain: ints(3 + rng.Intn(5))},
		{name: "v", typ: TypeText, domain: texts[:2+rng.Intn(4)]},
		{name: "w", typ: TypeInt, domain: ints(10)},
		{name: "f", typ: TypeFloat, domain: floats},
	}
}

// buildParityDB creates 2–3 tables over the shared column palette with
// random indexes and 5–45 rows each (about one value in eight NULL).
func buildParityDB(t testing.TB, rng *rand.Rand) (*DB, []string, []parityCol) {
	t.Helper()
	db := New()
	cols := parityDomains(rng)
	ntab := 2 + rng.Intn(2)
	tables := make([]string, ntab)
	for ti := 0; ti < ntab; ti++ {
		name := fmt.Sprintf("t%d", ti)
		tables[ti] = name
		ddl := fmt.Sprintf("CREATE TABLE %s (id INTEGER PRIMARY KEY", name)
		for _, c := range cols {
			ddl += fmt.Sprintf(", %s %s", c.name, c.typ)
		}
		ddl += ")"
		if _, err := db.Exec(ddl); err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
		// Random index shapes: single-column, composite, and one covering
		// the (key, payload) pattern the intersection planner exploits.
		for _, idx := range [][]string{{"k"}, {"v"}, {"w"}, {"k", "v"}, {"v", "k", "w"}, {"f"}} {
			if rng.Intn(2) == 0 {
				continue
			}
			stmt := fmt.Sprintf("CREATE INDEX %s_%s ON %s (%s)",
				name, strings.Join(idx, "_"), name, strings.Join(idx, ", "))
			if _, err := db.Exec(stmt); err != nil {
				t.Fatalf("index on %s: %v", name, err)
			}
		}
		nrows := 5 + rng.Intn(41)
		colNames := make([]string, 0, len(cols)+1)
		colNames = append(colNames, "id")
		ph := []string{"?"}
		for _, c := range cols {
			colNames = append(colNames, c.name)
			ph = append(ph, "?")
		}
		ins := fmt.Sprintf("INSERT INTO %s (%s) VALUES (%s)",
			name, strings.Join(colNames, ", "), strings.Join(ph, ", "))
		for r := 0; r < nrows; r++ {
			args := []Value{Int(int64(r))}
			for _, c := range cols {
				if rng.Intn(8) == 0 {
					args = append(args, Null())
				} else {
					args = append(args, c.domain[rng.Intn(len(c.domain))])
				}
			}
			if _, err := db.Exec(ins, args...); err != nil {
				t.Fatalf("insert %s: %v", name, err)
			}
		}
	}
	return db, tables, cols
}

// parityQuery generates one SELECT plus its parameters.
func parityQuery(rng *rand.Rand, tables []string, cols []parityCol) (string, []Value) {
	nstage := 1 + rng.Intn(3)
	aliases := make([]string, nstage)
	var from strings.Builder
	var params []Value
	// Join keys come from the shared palette so any two stages can join on
	// a same-named, same-typed column; k (INTEGER) exercises the int-key
	// intersection path, v (TEXT) the generic one.
	joinCols := []string{"k", "v", "w"}
	for si := 0; si < nstage; si++ {
		aliases[si] = fmt.Sprintf("a%d", si)
		tbl := tables[rng.Intn(len(tables))]
		if si == 0 {
			fmt.Fprintf(&from, "%s %s", tbl, aliases[si])
			continue
		}
		kind := " JOIN "
		if rng.Intn(7) == 0 {
			kind = " LEFT JOIN "
		}
		on := joinCols[rng.Intn(len(joinCols))]
		prev := aliases[rng.Intn(si)]
		fmt.Fprintf(&from, "%s%s %s ON %s.%s = %s.%s",
			kind, tbl, aliases[si], aliases[si], on, prev, on)
	}

	constOf := func(c parityCol) string {
		v := c.domain[rng.Intn(len(c.domain))]
		neg := (v.T == TypeInt && v.N < 0) || (v.T == TypeFloat && v.Float() < 0)
		switch {
		case neg || rng.Intn(4) == 0:
			// Parameter: always for negative numerics (the dialect has no
			// unary minus), occasionally NULL to exercise bind degradation.
			if rng.Intn(5) == 0 {
				v = Null()
			}
			params = append(params, v)
			return "?"
		case v.T == TypeText:
			return "'" + v.S + "'"
		default:
			return v.String()
		}
	}
	simplePred := func() string {
		a := aliases[rng.Intn(nstage)]
		c := cols[rng.Intn(len(cols))]
		switch rng.Intn(6) {
		case 0:
			return fmt.Sprintf("%s.%s < %s", a, c.name, constOf(c))
		case 1:
			return fmt.Sprintf("%s.%s >= %s", a, c.name, constOf(c))
		case 2:
			return fmt.Sprintf("%s.%s IN (%s, %s)", a, c.name, constOf(c), constOf(c))
		case 3:
			return fmt.Sprintf("%s.%s IS NULL", a, c.name)
		case 4:
			// Cross-stage equality on possibly different columns of one
			// type: feeds the key-equality classes and the residual path.
			b := aliases[rng.Intn(nstage)]
			c2 := c
			for _, cand := range cols {
				if cand.typ == c.typ && rng.Intn(2) == 0 {
					c2 = cand
				}
			}
			return fmt.Sprintf("%s.%s = %s.%s", a, c.name, b, c2.name)
		default:
			return fmt.Sprintf("%s.%s = %s", a, c.name, constOf(c))
		}
	}
	var where []string
	for i := rng.Intn(5); i > 0; i-- {
		p := simplePred()
		if rng.Intn(6) == 0 {
			p = "(" + p + " OR " + simplePred() + ")"
		}
		where = append(where, p)
	}

	sel := "SELECT "
	if rng.Intn(4) == 0 {
		sel += "DISTINCT "
	}
	var orderBy string
	switch rng.Intn(6) {
	case 0:
		sel += "COUNT(*)"
	case 1:
		sel += "*"
	default:
		var outs []string
		for i := 0; i <= rng.Intn(3); i++ {
			a := aliases[rng.Intn(nstage)]
			c := cols[rng.Intn(len(cols))]
			outs = append(outs, a+"."+c.name)
		}
		sel += strings.Join(outs, ", ")
		if rng.Intn(3) == 0 {
			a := aliases[rng.Intn(nstage)]
			c := cols[rng.Intn(len(cols))]
			orderBy = fmt.Sprintf(" ORDER BY %s.%s", a, c.name)
		}
	}
	q := sel + " FROM " + from.String()
	if len(where) > 0 {
		q += " WHERE " + strings.Join(where, " AND ")
	}
	q += orderBy
	return q, params
}

// rowMultiset canonicalizes a result for order-free comparison. The type
// tag is part of the encoding so INTEGER 1 and TEXT '1' cannot collide.
func rowMultiset(rows *Rows) []string {
	out := make([]string, 0, len(rows.Data))
	for _, r := range rows.Data {
		var b strings.Builder
		for _, v := range r {
			fmt.Fprintf(&b, "%d:%s|", v.T, v.String())
		}
		out = append(out, b.String())
	}
	sort.Strings(out)
	return out
}

// checkParity runs one generated query through both evaluators and fails
// on any divergence — differing rows, or an error on only one side.
func checkParity(t testing.TB, db *DB, q string, params []Value) {
	t.Helper()
	planned, perr := db.Query(q, params...)
	naive, nerr := db.QueryNaive(q, params...)
	if (perr == nil) != (nerr == nil) {
		t.Fatalf("evaluators disagree on error for %q (params %v): planner=%v naive=%v",
			q, params, perr, nerr)
	}
	if perr != nil {
		return
	}
	pm, nm := rowMultiset(planned), rowMultiset(naive)
	if len(pm) != len(nm) {
		t.Fatalf("row count mismatch for %q (params %v): planner=%d naive=%d\nplan: %s",
			q, params, len(pm), len(nm), mustExplain(db, q, params))
	}
	for i := range pm {
		if pm[i] != nm[i] {
			t.Fatalf("row mismatch for %q (params %v) at %d:\n  planner %s\n  naive   %s\nplan: %s",
				q, params, i, pm[i], nm[i], mustExplain(db, q, params))
		}
	}
}

func mustExplain(db *DB, q string, params []Value) string {
	plan, err := db.Explain(q, params...)
	if err != nil {
		return "explain error: " + err.Error()
	}
	return plan
}

// parityRound drives one seeded scenario: build a random database, then
// check a batch of random queries against it.
func parityRound(t testing.TB, seed int64, queries int) {
	rng := rand.New(rand.NewSource(seed))
	db, tables, cols := buildParityDB(t, rng)
	for i := 0; i < queries; i++ {
		q, params := parityQuery(rng, tables, cols)
		checkParity(t, db, q, params)
	}
}

// TestPlanParity is the deterministic face of the differential harness:
// 150 seeded scenarios, eight queries each. CI runs it with -count=2 -race.
func TestPlanParity(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 150; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			parityRound(t, seed, 8)
		})
	}
}

// FuzzPlanParity explores seeds beyond the fixed corpus; CI runs a 30s
// smoke (go test -fuzz=FuzzPlanParity -fuzztime=30s).
func FuzzPlanParity(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		parityRound(t, seed, 4)
	})
}
