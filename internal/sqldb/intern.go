package sqldb

import "sync/atomic"

// String interning for hot TEXT values.
//
// The MCS schema stores a small, heavily repeated vocabulary as TEXT:
// attribute names and types in user_attribute rows, data types and creators
// in logical_file rows, operation names in audit rows. Every row insert used
// to carry its own copy of each such string (the parser and wire decoders
// allocate fresh ones per statement), so a table of a million files held a
// million copies of "owner". Interning collapses those to one shared string
// per distinct value, which both shrinks the heap and makes the later
// Compare calls on index probes likelier to short-circuit on pointer-equal
// string headers.
//
// The table is a fixed-size direct-mapped cache probed lock-free with
// atomics: a hit returns the shared copy, a miss publishes the new string,
// evicting whatever hashed to the same slot. No locks, no growth, no
// eviction scans — worst case (all-distinct strings) it degrades to a
// no-op with one atomic load per call. It is safe for concurrent use.

const (
	internSlots  = 4096
	internMaxLen = 64
)

var internTab [internSlots]atomic.Pointer[string]

// Intern returns a canonical copy of s, deduplicating recently seen strings.
// Long strings (URLs, free-text descriptions) pass through untouched: they
// rarely repeat and would only thrash the table.
func Intern(s string) string {
	if len(s) == 0 || len(s) > internMaxLen {
		return s
	}
	slot := &internTab[internHash(s)%internSlots]
	if p := slot.Load(); p != nil && *p == s {
		return *p
	}
	slot.Store(&s)
	return s
}

// internBytes is Intern for a byte slice: on a hit it returns the shared
// string without allocating a conversion copy, which is the common case when
// decoding WAL records and wire requests that repeat schema vocabulary.
func internBytes(b []byte) string {
	if len(b) == 0 || len(b) > internMaxLen {
		return string(b)
	}
	slot := &internTab[internHashBytes(b)%internSlots]
	if p := slot.Load(); p != nil && *p == string(b) {
		return *p
	}
	s := string(b)
	slot.Store(&s)
	return s
}

// internHash is FNV-1a; inlined rather than hash/fnv to avoid the
// hash.Hash64 interface allocation on this very hot path.
func internHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func internHashBytes(b []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(b); i++ {
		h ^= uint32(b[i])
		h *= 16777619
	}
	return h
}
