package sqldb

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The torn-write corpus: commit a handful of transactions through the
// engine, then simulate a crash mid-write by hard-cutting the log at every
// byte offset of the final record and recovering from the prefix. The
// recovery invariants under test:
//
//  1. No cut is fatal — recovery truncates the torn tail and proceeds.
//  2. No cut loses a commit older than the torn record.
//  3. No cut resurrects any part of the torn record: state is exactly the
//     state as of the last whole record.
//  4. The recovered log accepts new commits on a clean record boundary.

// walBootstrap applies the deterministic pre-WAL schema a fresh engine
// starts from (mirroring how the catalog's bootstrap DDL runs pre-attach).
func walBootstrap(t *testing.T, db *DB) {
	t.Helper()
	mustExec(t, db, "CREATE TABLE kv (k TEXT NOT NULL, v INTEGER NOT NULL)")
	mustExec(t, db, "CREATE TABLE seq (id INTEGER AUTOINCREMENT, label TEXT NOT NULL)")
}

func TestWALTornWriteCorpus(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.wal")

	db := New()
	walBootstrap(t, db)
	w, _ := openTestWAL(t, path, db, WALOptions{})

	// Commits of varying shapes so the final record's offsets sweep
	// through length, CRC, LSN, statement text and every value type.
	commits := [][]func(tx *Tx) error{
		{func(tx *Tx) error {
			_, err := tx.Exec("INSERT INTO kv (k, v) VALUES (?, ?)", Text("alpha"), Int(1))
			return err
		}},
		{func(tx *Tx) error {
			_, err := tx.Exec("INSERT INTO seq (label) VALUES (?)", Text("first"))
			return err
		}, func(tx *Tx) error {
			_, err := tx.Exec("UPDATE kv SET v = ? WHERE k = ?", Int(2), Text("alpha"))
			return err
		}},
		{func(tx *Tx) error {
			_, err := tx.Exec("INSERT INTO kv (k, v) VALUES (?, ?)", Text("beta"), Int(3))
			return err
		}, func(tx *Tx) error {
			_, err := tx.Exec("DELETE FROM kv WHERE k = ?", Text("alpha"))
			return err
		}, func(tx *Tx) error {
			_, err := tx.Exec("INSERT INTO seq (label) VALUES (?)", Text("second — final record"))
			return err
		}},
	}

	// states[i] is the dump after commit i; sizes[i] the durable log size.
	states := make([][]byte, 0, len(commits)+1)
	sizes := make([]int64, 0, len(commits)+1)
	snap := func() {
		var buf bytes.Buffer
		if err := db.Dump(&buf); err != nil {
			t.Fatalf("Dump: %v", err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("Stat: %v", err)
		}
		states = append(states, buf.Bytes())
		sizes = append(sizes, fi.Size())
	}
	snap() // state 0: bootstrap only, empty log
	for i, stmts := range commits {
		if err := db.Update(func(tx *Tx) error {
			for _, fn := range stmts {
				if err := fn(tx); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatalf("commit %d: %v", i+1, err)
		}
		snap()
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if int64(len(whole)) != sizes[len(sizes)-1] {
		t.Fatalf("log size %d, recorded %d", len(whole), sizes[len(sizes)-1])
	}

	// Cut at every byte offset of the final record — from the last whole
	// record's end (final record fully torn) through one byte short of the
	// full file — plus the full file as a control. Every prefix must
	// recover to the state of its last whole record.
	lastWhole := sizes[len(sizes)-2]
	for cut := lastWhole; cut <= int64(len(whole)); cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			cdir := t.TempDir()
			cpath := filepath.Join(cdir, "state.wal")
			if err := os.WriteFile(cpath, whole[:cut], 0o644); err != nil {
				t.Fatalf("WriteFile: %v", err)
			}
			db2 := New()
			walBootstrap(t, db2)
			w2, stats, err := OpenWAL(cpath, db2, 0, WALOptions{})
			if err != nil {
				t.Fatalf("recovery errored at cut %d: %v", cut, err)
			}
			db2.AttachWAL(w2)
			defer w2.Close()

			wantIdx := len(states) - 1 // full file: all commits
			wantTorn := int64(0)
			if cut < int64(len(whole)) {
				wantIdx = len(states) - 2 // torn final record: one commit less
				wantTorn = cut - lastWhole
			}
			if stats.TornBytes != wantTorn {
				t.Fatalf("TornBytes = %d, want %d", stats.TornBytes, wantTorn)
			}
			var buf bytes.Buffer
			if err := db2.Dump(&buf); err != nil {
				t.Fatalf("Dump: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), states[wantIdx]) {
				t.Fatalf("recovered state at cut %d differs from state after commit %d",
					cut, wantIdx)
			}
			// The truncated log must be writable and replayable again: the
			// next commit lands on a whole-record boundary.
			mustExec(t, db2, "INSERT INTO kv (k, v) VALUES (?, ?)", Text("post"), Int(99))
			post := db2.LastLSN()
			if err := w2.Close(); err != nil {
				t.Fatalf("Close after recovery: %v", err)
			}
			db3 := New()
			walBootstrap(t, db3)
			w3, stats3, err := OpenWAL(cpath, db3, 0, WALOptions{})
			if err != nil {
				t.Fatalf("second recovery: %v", err)
			}
			db3.AttachWAL(w3)
			defer w3.Close()
			if stats3.TornBytes != 0 {
				t.Fatalf("second recovery found %d torn bytes", stats3.TornBytes)
			}
			if db3.LastLSN() != post {
				t.Fatalf("second recovery LSN = %d, want %d", db3.LastLSN(), post)
			}
		})
	}
}

// A scribbled (bit-flipped) tail must be truncated exactly like a torn one:
// the CRC rejects the record, earlier commits survive.
func TestWALCorruptTailTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.wal")

	db := New()
	walBootstrap(t, db)
	w, _ := openTestWAL(t, path, db, WALOptions{})
	mustExec(t, db, "INSERT INTO kv (k, v) VALUES (?, ?)", Text("keep"), Int(1))
	var keep bytes.Buffer
	if err := db.Dump(&keep); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	keepSize := fi.Size()
	mustExec(t, db, "INSERT INTO kv (k, v) VALUES (?, ?)", Text("lose"), Int(2))
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Flip one payload byte of the final record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	data[keepSize+walRecordHeaderSize+2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	db2 := New()
	walBootstrap(t, db2)
	w2, stats, err := OpenWAL(path, db2, 0, WALOptions{})
	if err != nil {
		t.Fatalf("recovery errored on corrupt tail: %v", err)
	}
	db2.AttachWAL(w2)
	defer w2.Close()
	if stats.Applied != 1 || stats.TornBytes != int64(len(data))-keepSize {
		t.Fatalf("stats = %+v, want 1 applied, %d torn", stats, int64(len(data))-keepSize)
	}
	var got bytes.Buffer
	if err := db2.Dump(&got); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	if !bytes.Equal(got.Bytes(), keep.Bytes()) {
		t.Fatal("recovered state differs from last whole record")
	}
}
