# Development targets. `make check` is the pre-merge gate: formatting,
# static analysis and the full test suite under the race detector.

GO ?= go

.PHONY: build test race vet fmt check chaos bench figures readpath walcrash walbench transportbench addpath attrpath planparity shardbench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check: fmt vet race planparity
	@echo "check: ok"

# The differential planner-parity suite: seeded random schemas, data and
# SELECTs, the cost-based planner against the naive full-scan evaluator
# (row multisets must match exactly), run twice under the race detector,
# then a short randomized fuzzing pass over fresh seeds.
planparity:
	$(GO) test -race -count=2 -run 'TestPlanParity' ./internal/sqldb
	$(GO) test -run '^$$' -fuzz 'FuzzPlanParity' -fuzztime 30s ./internal/sqldb

# The fault-injection suite under fixed seeds (override with
# MCS_CHAOS_SEEDS=...): fault matrix, retry tests, soak, plus the shard
# router's degraded-mode legs (partial results, retried mutations through
# the router, pagination across a shard restart).
chaos:
	MCS_CHAOS_SEEDS=$${MCS_CHAOS_SEEDS:-1,7,42} \
		$(GO) test -race -timeout 5m -run 'TestChaos|TestRetry|TestBatchWriteAtomicVisibility|TestPaginationTokenSurvivesRestart|TestShardRouterChaosPartialResult|TestShardRouterRetriedMutation|TestShardRouterPaginationAcrossShardRestart' -v .

bench:
	$(GO) test -bench=. -benchmem ./...

figures:
	$(GO) run ./cmd/mcsbench -fig all

# The MVCC read-path sweep (Fig. 14): one writer plus 1/2/4/8 reader
# threads on one catalog, emitted as BENCH_readpath.json. Override the
# window or size for a quick smoke run, e.g.
# `make readpath READPATH_FLAGS="-duration 200ms -sizes 1000"`.
readpath:
	$(GO) run ./cmd/mcsbench -fig 14 -threads 1,2,4,8 -sizes 10000 \
		-json BENCH_readpath.json $(READPATH_FLAGS)

# The write-ahead-log crash suite: the torn-write corpus (recovery from a
# hard cut at every byte offset of the final record), the kill-and-replay
# chaos leg (a retried mutation straddling a crash stays exactly-once),
# the checkpoint-failure regression and the daemon-level crash recovery.
walcrash:
	MCS_CHAOS_SEEDS=$${MCS_CHAOS_SEEDS:-1,7,42} \
		$(GO) test -race -timeout 10m -v \
		-run 'TestWAL|TestChaosWALKillReplay|TestCheckpointFailureKeepsWAL|TestDaemonWALCrashRecovery' \
		./internal/sqldb ./cmd/mcsd .

# The durability sweep (Fig. 15): add rate snapshot-only vs WAL with group
# commit vs WAL without fsync, emitted as BENCH_wal.json. Override for a
# quick smoke run, e.g.
# `make walbench WALBENCH_FLAGS="-duration 200ms -sizes 1000"`.
walbench:
	$(GO) run ./cmd/mcsbench -fig 15 -threads 1,2,4,8 -sizes 10000 \
		-wal-json BENCH_wal.json $(WALBENCH_FLAGS)

# The wire comparison (Fig. 16): add and simple-query rate through the same
# server over the SOAP envelope vs the compact JSON wire, emitted as
# BENCH_transport.json (including the JSON/SOAP speedup on the add path).
# Override for a quick smoke run, e.g.
# `make transportbench TRANSPORTBENCH_FLAGS="-duration 200ms -sizes 1000"`.
transportbench:
	$(GO) run ./cmd/mcsbench -fig 16 -threads 1,2,4,8 -sizes 10000 \
		-transport-json BENCH_transport.json $(TRANSPORTBENCH_FLAGS)

# The write-amplification sweep (Fig. 17): pure add rate, one CreateFile per
# file vs 100 creates per batchWrite transaction, with heap bytes allocated
# per add, emitted as BENCH_addpath.json. Override for a quick smoke run,
# e.g. `make addpath ADDPATH_FLAGS="-duration 200ms -sizes 1000"`.
addpath:
	$(GO) run ./cmd/mcsbench -fig 17 -threads 1,2,4,8 -sizes 10000 \
		-addpath-json BENCH_addpath.json $(ADDPATH_FLAGS)

# The attribute-count sweep (Fig. 11): complex-query rate vs predicate count,
# single thread, database only, emitted as BENCH_attrpath.json including the
# per-count EXPLAIN plans and the 1-to-8-attribute cliff ratio the cost-based
# planner is held to (<= 2; the nested-join baseline was near 10). Override
# for a quick smoke run, e.g.
# `make attrpath ATTRPATH_FLAGS="-duration 300ms -sizes 2000"`.
attrpath:
	$(GO) run ./cmd/mcsbench -fig 11 -attr-sweep 1,2,4,6,8,10 -sizes 20000 \
		-attr-json BENCH_attrpath.json $(ATTRPATH_FLAGS)

# The horizontal-sharding sweep (Fig. 18): aggregate add, simple-query and
# scatter-query rate through the mcsrouter front end at 1, 2 and 4 shards,
# emitted as BENCH_shard.json including the add-rate scale-out factor at the
# largest shard count (meaningful on multi-core hosts; a single core
# measures routing overhead instead — the JSON records gomaxprocs).
# Override for a quick smoke run, e.g.
# `make shardbench SHARDBENCH_FLAGS="-duration 200ms -sizes 1000"`.
shardbench:
	$(GO) run ./cmd/mcsbench -fig 18 -shard-counts 1,2,4 -sizes 10000 \
		-shard-json BENCH_shard.json $(SHARDBENCH_FLAGS)
