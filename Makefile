# Development targets. `make check` is the pre-merge gate: formatting,
# static analysis and the full test suite under the race detector.

GO ?= go

.PHONY: build test race vet fmt check bench figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check: fmt vet race
	@echo "check: ok"

bench:
	$(GO) test -bench=. -benchmem ./...

figures:
	$(GO) run ./cmd/mcsbench -fig all
