package mcs

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"
)

// Continuation tokens are stateless cursors, so a token handed out by one
// server process must resume exactly — no duplicates, no gaps — against a
// new process restored from a snapshot (satellite: pagination across
// restart).
func TestPaginationTokenSurvivesRestart(t *testing.T) {
	const total, pageSize = 25, 10
	srv1, url1 := startServer(t, ServerOptions{})
	admin := NewClient(url1, testAlice)
	if _, err := admin.DefineAttribute("pg", AttrString, ""); err != nil {
		t.Fatal(err)
	}
	want := make([]string, 0, total)
	for i := 0; i < total; i++ {
		name := fmt.Sprintf("pg-%02d.dat", i)
		want = append(want, name)
		_, err := admin.CreateFile(FileSpec{
			Name:       name,
			Attributes: []Attribute{{Name: "pg", Value: String("1")}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	q := Query{Target: ObjectFile, Predicates: []Predicate{
		{Attribute: "pg", Op: OpEq, Value: String("1")},
	}}

	got, token, err := admin.RunQueryPage(q, pageSize, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != pageSize || token == "" {
		t.Fatalf("first page = %d names, token %q; want a full page and a token", len(got), token)
	}

	// Snapshot the catalog mid-walk and bring up a fresh server on the
	// restored copy — the moral equivalent of a daemon restart.
	var buf bytes.Buffer
	if err := srv1.Catalog().Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	cat2, err := RestoreCatalog(Options{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	_, url2 := startServer(t, ServerOptions{Catalog: cat2})
	c2 := NewClient(url2, testAlice)

	for token != "" {
		var page []string
		page, token, err = c2.RunQueryPage(q, pageSize, token)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, page...)
	}
	sort.Strings(got)
	if len(got) != total {
		t.Fatalf("walk across restart returned %d names, want %d: %v", len(got), total, got)
	}
	for i, name := range got {
		if name != want[i] {
			t.Fatalf("walk across restart diverged at %d: got %q, want %q (dup or gap)", i, name, want[i])
		}
	}

	// A corrupted token is an input error, not a server crash.
	if _, _, err := c2.RunQueryPage(q, pageSize, "!!!not-base64!!!"); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("malformed token err = %v, want ErrInvalidInput", err)
	}
}

// A BatchWrite is atomic to concurrent readers: a paginating query that
// races the batch sees either none of its files or all of them, never a
// partial batch (satellite: batch vs. query visibility under -race).
func TestBatchWriteAtomicVisibility(t *testing.T) {
	const rounds, batchSize = 10, 6
	_, url := startServer(t, ServerOptions{})
	admin := NewClient(url, testAlice)
	if _, err := admin.DefineAttribute("vis", AttrString, ""); err != nil {
		t.Fatal(err)
	}
	writer := NewClient(url, testAlice)
	reader := NewClient(url, testAlice)

	for r := 0; r < rounds; r++ {
		round := fmt.Sprintf("r%d", r)
		var ops []BatchOp
		for f := 0; f < batchSize; f++ {
			ops = append(ops, BatchOp{CreateFile: &FileSpec{
				Name:       fmt.Sprintf("vis-%s-f%d.dat", round, f),
				Attributes: []Attribute{{Name: "vis", Value: String(round)}},
			}})
		}
		q := Query{Target: ObjectFile, Predicates: []Predicate{
			{Attribute: "vis", Op: OpEq, Value: String(round)},
		}}

		done := make(chan error, 1)
		go func() {
			_, err := writer.BatchWrite(ops)
			done <- err
		}()
		// Observe as often as possible while the batch is in flight; every
		// observation must be all-or-nothing.
		for committed := false; !committed; {
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("round %s: batch write = %v", round, err)
				}
				committed = true
			default:
			}
			names, _, err := reader.RunQueryPage(q, batchSize+1, "")
			if err != nil {
				t.Fatalf("round %s: query = %v", round, err)
			}
			if n := len(names); n != 0 && n != batchSize {
				t.Fatalf("round %s: observed %d/%d files — batch visibility must be all-or-nothing", round, n, batchSize)
			}
		}
		// After the ack, the whole batch is visible.
		names, _, err := reader.RunQueryPage(q, batchSize+1, "")
		if err != nil || len(names) != batchSize {
			t.Fatalf("round %s: post-commit query = %d names, %v; want %d", round, len(names), err, batchSize)
		}
	}
}
