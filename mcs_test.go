package mcs

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mcs/internal/gsi"
	"mcs/internal/soap"
)

const (
	testAlice = "/O=Grid/OU=ISI/CN=Alice"
	testBob   = "/O=Grid/OU=ISI/CN=Bob"
)

func startServer(t *testing.T, opts ServerOptions) (*Server, string) {
	t.Helper()
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts.URL
}

func TestEndToEndFileLifecycle(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	c := NewClient(url, testAlice)

	if _, err := c.DefineAttribute("frequency", AttrFloat, "band in Hz"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DefineAttribute("run", AttrString, "science run"); err != nil {
		t.Fatal(err)
	}
	f, err := c.CreateFile(FileSpec{
		Name:     "H-R-7000.gwf",
		DataType: "binary",
		Attributes: []Attribute{
			{Name: "frequency", Value: Float(40.5)},
			{Name: "run", Value: String("S2")},
		},
		Provenance: "recorded by H1 interferometer",
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.ID == 0 || f.Creator != testAlice || f.Version != 1 {
		t.Fatalf("created = %+v", f)
	}

	got, err := c.GetFile("H-R-7000.gwf", 0)
	if err != nil || got.DataType != "binary" {
		t.Fatalf("get = %+v, %v", got, err)
	}

	attrs, err := c.GetAttributes(ObjectFile, "H-R-7000.gwf")
	if err != nil || len(attrs) != 2 {
		t.Fatalf("attrs = %v, %v", attrs, err)
	}

	names, err := c.RunQuery(Query{Predicates: []Predicate{
		{Attribute: "run", Op: OpEq, Value: String("S2")},
		{Attribute: "frequency", Op: OpGt, Value: Float(40.0)},
	}})
	if err != nil || len(names) != 1 || names[0] != "H-R-7000.gwf" {
		t.Fatalf("query = %v, %v", names, err)
	}

	recs, err := c.Provenance("H-R-7000.gwf", 0)
	if err != nil || len(recs) != 1 || !strings.Contains(recs[0].Description, "H1") {
		t.Fatalf("provenance = %v, %v", recs, err)
	}

	if err := c.DeleteFile("H-R-7000.gwf", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetFile("H-R-7000.gwf", 0); err == nil {
		t.Fatal("deleted file still visible")
	}
}

func TestEndToEndCollectionsViews(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	c := NewClient(url, testAlice)
	if _, err := c.CreateCollection(CollectionSpec{Name: "esg", Description: "climate"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateCollection(CollectionSpec{Name: "esg-ncar", Parent: "esg"}); err != nil {
		t.Fatal(err)
	}
	c.CreateFile(FileSpec{Name: "t42.nc", Collection: "esg-ncar"}) //nolint:errcheck
	files, subs, err := c.CollectionContents("esg-ncar")
	if err != nil || len(files) != 1 || len(subs) != 0 {
		t.Fatalf("contents = %v %v %v", files, subs, err)
	}
	colls, err := c.ListCollections("esg%")
	if err != nil || len(colls) != 2 {
		t.Fatalf("list = %v, %v", colls, err)
	}

	if _, err := c.CreateView(ViewSpec{Name: "my-favorites"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddToView("my-favorites", ObjectCollection, "esg-ncar"); err != nil {
		t.Fatal(err)
	}
	names, err := c.ExpandView("my-favorites")
	if err != nil || len(names) != 1 || names[0] != "t42.nc" {
		t.Fatalf("expand = %v, %v", names, err)
	}
	members, err := c.ViewContents("my-favorites")
	if err != nil || len(members) != 1 || members[0].Type != ObjectCollection {
		t.Fatalf("members = %v, %v", members, err)
	}
	if err := c.RemoveFromView("my-favorites", ObjectCollection, "esg-ncar"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteView("my-favorites"); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndAnnotationsAndAudit(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	alice := NewClient(url, testAlice)
	bob := NewClient(url, testBob)
	alice.CreateFile(FileSpec{Name: "f", Audited: true}) //nolint:errcheck
	if _, err := bob.Annotate(ObjectFile, "f", "spiky around t=100"); err != nil {
		t.Fatal(err)
	}
	anns, err := alice.Annotations(ObjectFile, "f")
	if err != nil || len(anns) != 1 || anns[0].Creator != testBob {
		t.Fatalf("annotations = %v, %v", anns, err)
	}
	recs, err := alice.AuditLog(ObjectFile, "f")
	if err != nil || len(recs) != 1 || recs[0].Action != "create" {
		t.Fatalf("audit = %v, %v", recs, err)
	}
}

func TestEndToEndUpdateAndVersions(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	c := NewClient(url, testAlice)
	c.CreateFile(FileSpec{Name: "v", DataType: "binary"}) //nolint:errcheck
	c.CreateFile(FileSpec{Name: "v"})                     //nolint:errcheck
	vs, err := c.FileVersions("v")
	if err != nil || len(vs) != 2 {
		t.Fatalf("versions = %v, %v", vs, err)
	}
	dt := "xml"
	f, err := c.UpdateFile("v", 1, FileUpdate{DataType: &dt})
	if err != nil || f.DataType != "xml" {
		t.Fatalf("update = %+v, %v", f, err)
	}
	if err := c.InvalidateFile("v", 2); err != nil {
		t.Fatal(err)
	}
	f2, _ := c.GetFile("v", 2)
	if f2.Valid {
		t.Fatal("invalidate did not stick")
	}
}

func TestEndToEndWritersAndExternalCatalogs(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	c := NewClient(url, testAlice)
	if err := c.RegisterWriter(Writer{DN: testAlice, Institution: "ISI", Email: "a@isi.edu"}); err != nil {
		t.Fatal(err)
	}
	w, err := c.GetWriter(testAlice)
	if err != nil || w.Institution != "ISI" {
		t.Fatalf("writer = %+v, %v", w, err)
	}
	id, err := c.RegisterExternalCatalog(ExternalCatalog{Name: "mcat", Type: "relational", Host: "srb.sdsc.edu"})
	if err != nil || id == 0 {
		t.Fatalf("external catalog = %d, %v", id, err)
	}
	list, err := c.ListExternalCatalogs()
	if err != nil || len(list) != 1 {
		t.Fatalf("list = %v, %v", list, err)
	}
}

func TestEndToEndStats(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	c := NewClient(url, testAlice)
	c.CreateFile(FileSpec{Name: "s1"}) //nolint:errcheck
	c.CreateFile(FileSpec{Name: "s2"}) //nolint:errcheck
	st, err := c.Stats()
	if err != nil || st.Files != 2 {
		t.Fatalf("stats = %+v, %v", st, err)
	}
}

func TestEndToEndFaultsCarrySentinels(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	c := NewClient(url, testAlice)
	_, err := c.GetFile("nope", 0)
	var fault *soap.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("err = %T %v", err, err)
	}
	if !strings.Contains(fault.String, "not found") {
		t.Fatalf("fault = %q", fault.String)
	}
}

func TestEndToEndWithGSI(t *testing.T) {
	ca, err := gsi.NewCA("/O=Grid/CN=TestCA")
	if err != nil {
		t.Fatal(err)
	}
	trust := gsi.NewTrustStore(ca.Root)
	srv, url := startServer(t, ServerOptions{TrustStore: trust})
	_ = srv

	// Unsigned request fails authentication.
	c := NewClient(url, testAlice)
	if _, err := c.Ping(); err == nil {
		t.Fatal("unsigned request accepted")
	}

	// Signed request authenticates as the credential DN, even though the
	// client declares someone else.
	cred, _ := ca.Issue(testAlice, time.Hour)
	proxy, _ := cred.Delegate(10 * time.Minute)
	c2 := NewClient(url, "/CN=Impostor")
	c2.UseCredential(proxy)
	dn, err := c2.Ping()
	if err != nil {
		t.Fatal(err)
	}
	if dn != testAlice {
		t.Fatalf("server saw DN %q, want %q", dn, testAlice)
	}
	// Full operation through the authenticated path.
	f, err := c2.CreateFile(FileSpec{Name: "signed.dat"})
	if err != nil {
		t.Fatal(err)
	}
	if f.Creator != testAlice {
		t.Fatalf("creator = %q (declared identity must not win)", f.Creator)
	}
}

func TestEndToEndAuthorization(t *testing.T) {
	adminDN := "/O=Grid/CN=Admin"
	_, url := startServer(t, ServerOptions{
		CatalogOptions: Options{Owner: adminDN, EnforceAuthz: true},
	})
	adminC := NewClient(url, adminDN)
	aliceC := NewClient(url, testAlice)
	bobC := NewClient(url, testBob)

	// Alice cannot create until granted.
	if _, err := aliceC.CreateFile(FileSpec{Name: "x"}); err == nil {
		t.Fatal("ungranted create succeeded")
	}
	if err := adminC.Grant(ObjectService, "", testAlice, PermCreate); err != nil {
		t.Fatal(err)
	}
	if _, err := aliceC.CreateFile(FileSpec{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	// Bob cannot read Alice's file until granted on it.
	if _, err := bobC.GetFile("x", 0); err == nil {
		t.Fatal("unauthorized read succeeded")
	}
	if err := aliceC.Grant(ObjectFile, "x", testBob, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := bobC.GetFile("x", 0); err != nil {
		t.Fatal(err)
	}
	if err := aliceC.Revoke(ObjectFile, "x", testBob, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := bobC.GetFile("x", 0); err == nil {
		t.Fatal("read after revoke succeeded")
	}
}

func TestConcurrentClients(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	setup := NewClient(url, testAlice)
	if _, err := setup.DefineAttribute("n", AttrInt, ""); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			c := NewClient(url, testAlice)
			for i := 0; i < 20; i++ {
				name := strings.Repeat("w", w+1) + "-" + strings.Repeat("i", i+1)
				if _, err := c.CreateFile(FileSpec{
					Name:       name,
					Attributes: []Attribute{{Name: "n", Value: Int(int64(i))}},
				}); err != nil {
					done <- err
					return
				}
				if _, err := c.RunQuery(Query{Predicates: []Predicate{
					{Attribute: "n", Op: OpEq, Value: Int(int64(i))},
				}}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	st, _ := setup.Stats()
	if st.Files != workers*20 {
		t.Fatalf("files = %d, want %d", st.Files, workers*20)
	}
}

func TestEmbeddedCatalogUse(t *testing.T) {
	cat, err := OpenCatalog(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateFile(testAlice, FileSpec{Name: "embedded"}); err != nil {
		t.Fatal(err)
	}
	f, err := cat.GetFile(testAlice, "embedded", 0)
	if err != nil || f.Name != "embedded" {
		t.Fatalf("embedded get = %+v, %v", f, err)
	}
}

func TestQueryWithReturnedAttributes(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	c := NewClient(url, testAlice)
	c.DefineAttribute("band", AttrString, "") //nolint:errcheck
	c.DefineAttribute("dur", AttrInt, "")     //nolint:errcheck
	c.DefineAttribute("extra", AttrFloat, "") //nolint:errcheck
	for i := 0; i < 3; i++ {
		c.CreateFile(FileSpec{ //nolint:errcheck
			Name: fmt.Sprintf("qa-%d", i),
			Attributes: []Attribute{
				{Name: "band", Value: String("high")},
				{Name: "dur", Value: Int(int64(i * 10))},
				{Name: "extra", Value: Float(1.5)},
			},
		})
	}
	results, err := c.RunQueryAttrs(Query{Predicates: []Predicate{
		{Attribute: "band", Op: OpEq, Value: String("high")},
	}}, []string{"dur", "band"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %v", results)
	}
	for _, r := range results {
		if len(r.Attributes) != 2 {
			t.Fatalf("returned attrs for %s = %v", r.Name, r.Attributes)
		}
		for _, a := range r.Attributes {
			if a.Name != "dur" && a.Name != "band" {
				t.Fatalf("unrequested attribute %q returned", a.Name)
			}
		}
	}
	// Requesting an undefined attribute fails loudly.
	if _, err := c.RunQueryAttrs(Query{Predicates: []Predicate{
		{Attribute: "band", Op: OpEq, Value: String("high")},
	}}, []string{"nosuch"}); err == nil {
		t.Fatal("undefined return attribute accepted")
	}
}
