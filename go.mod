module mcs

go 1.22
