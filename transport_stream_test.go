package mcs

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mcs/internal/jsonwire"
	"mcs/internal/mcswire"
)

// loadStreamFixture creates n files tagged kind=stream via batched writes
// and returns the query matching them.
func loadStreamFixture(t *testing.T, c *Client, n int) Query {
	t.Helper()
	if _, err := c.DefineAttribute("kind", AttrString, "fixture tag"); err != nil {
		t.Fatal(err)
	}
	const batch = 400
	for start := 0; start < n; start += batch {
		var ops []BatchOp
		for i := start; i < start+batch && i < n; i++ {
			ops = append(ops, BatchOp{CreateFile: &FileSpec{
				Name:       fmt.Sprintf("s%05d.dat", i),
				Attributes: []Attribute{{Name: "kind", Value: String("stream")}},
			}})
		}
		if _, err := c.BatchWrite(ops); err != nil {
			t.Fatal(err)
		}
	}
	return Query{Predicates: []Predicate{{Attribute: "kind", Op: OpEq, Value: String("stream")}}}
}

// TestStreamQueryNDJSON drives a query whose result set is larger than the
// server's internal streaming page (512) over the JSON wire and checks
// every row arrives exactly once — and that the SOAP client's paged
// fallback yields the identical row sequence.
func TestStreamQueryNDJSON(t *testing.T) {
	const n = 1200
	_, url := startServer(t, ServerOptions{})
	admin := NewClient(url, testAlice)
	q := loadStreamFixture(t, admin, n)

	collect := func(c *Client) []string {
		t.Helper()
		var names []string
		if err := c.RunQueryStream(q, func(name string) error {
			names = append(names, name)
			return nil
		}); err != nil {
			t.Fatalf("stream over %s: %v", c.TransportName(), err)
		}
		return names
	}
	jsonNames := collect(NewClient(url, testAlice, WithTransport(TransportJSON)))
	soapNames := collect(NewClient(url, testAlice)) // paged fallback

	if len(jsonNames) != n {
		t.Fatalf("json stream rows = %d, want %d", len(jsonNames), n)
	}
	if len(soapNames) != len(jsonNames) {
		t.Fatalf("row count differs: soap fallback %d, json stream %d", len(soapNames), len(jsonNames))
	}
	for i := range jsonNames {
		if jsonNames[i] != soapNames[i] {
			t.Fatalf("row %d differs: soap %q, json %q", i, soapNames[i], jsonNames[i])
		}
	}

	// Limit applies on the streamed path too.
	ql := q
	ql.Limit = 7
	var limited []string
	c := NewClient(url, testAlice, WithTransport(TransportJSON))
	if err := c.RunQueryStream(ql, func(name string) error {
		limited = append(limited, name)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(limited) != 7 {
		t.Fatalf("limited stream rows = %d, want 7", len(limited))
	}

	// A row-callback error aborts the stream and surfaces to the caller.
	abort := errors.New("enough")
	seen := 0
	err := c.RunQueryStream(q, func(string) error {
		seen++
		if seen == 3 {
			return abort
		}
		return nil
	})
	if !errors.Is(err, abort) || seen != 3 {
		t.Fatalf("aborted stream: err=%v seen=%d, want abort after 3 rows", err, seen)
	}
}

// TestStreamChunkedWire checks the raw HTTP contract of a streamed reply:
// chunked transfer (no Content-Length — the server never knows the full
// size, because it never holds the full result), the NDJSON content type,
// and the {"end":true} terminator line.
func TestStreamChunkedWire(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	admin := NewClient(url, testAlice)
	loadStreamFixture(t, admin, 600)

	body := `{"caller":"` + testAlice + `","predicates":[{"attribute":"kind","op":"=","type":"string","value":"stream"}]}`
	req, err := http.NewRequest(http.MethodPost, url+"/api/v1/query", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.ContentLength >= 0 {
		t.Fatalf("streamed reply has Content-Length %d; want chunked", resp.ContentLength)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/x-ndjson") {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 601 { // 600 rows + terminator
		t.Fatalf("lines = %d, want 601", len(lines))
	}
	if lines[len(lines)-1] != `{"end":true}` {
		t.Fatalf("last line = %q, want terminator", lines[len(lines)-1])
	}
}

// TestStreamTruncationDetected checks the client treats a stream that ends
// without the terminator — a connection severed mid-flight — as a transport
// failure, not a short-but-successful result.
func TestStreamTruncationDetected(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		io.WriteString(w, `{"name":"one.dat"}`+"\n"+`{"name":"two.dat"}`+"\n") //nolint:errcheck
		// No {"end":true}: the response just stops.
	}))
	t.Cleanup(ts.Close)

	c := NewClient(ts.URL, testAlice, WithTransport(TransportJSON))
	var rows int
	err := c.RunQueryStream(Query{}, func(string) error { rows++; return nil })
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("truncated stream: err = %v, want ErrTransport", err)
	}
	if rows != 2 {
		t.Fatalf("rows before truncation = %d, want 2", rows)
	}
}

// TestStreamCollectionContents exercises the second streamed operation via
// the raw wire client: members of a large collection arrive one row at a
// time, files and sub-collections both represented.
func TestStreamCollectionContents(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	admin := NewClient(url, testAlice)
	if _, err := admin.CreateCollection(CollectionSpec{Name: "big"}); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.CreateCollection(CollectionSpec{Name: "sub", Parent: "big"}); err != nil {
		t.Fatal(err)
	}
	const nf = 700
	for start := 0; start < nf; start += 350 {
		var ops []BatchOp
		for i := start; i < start+350; i++ {
			ops = append(ops, BatchOp{CreateFile: &FileSpec{
				Name: fmt.Sprintf("m%05d.dat", i), Collection: "big",
			}})
		}
		if _, err := admin.BatchWrite(ops); err != nil {
			t.Fatal(err)
		}
	}

	jc := jsonwire.NewClient(url)
	var files, subs int
	err := jc.StreamCtx(t.Context(), "collectionContents", nil,
		map[string]string{"caller": testAlice, "name": "big"},
		func() any { return new(mcswire.ContentsRow) },
		func(r any) error {
			row := r.(*mcswire.ContentsRow)
			switch {
			case row.File != nil:
				files++
			case row.Collection != nil:
				subs++
			default:
				return fmt.Errorf("row with neither file nor collection")
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if files != nf || subs != 1 {
		t.Fatalf("streamed contents = %d files, %d subs; want %d, 1", files, subs, nf)
	}
}
