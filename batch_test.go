package mcs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
)

// End-to-end coverage of the batched-write and paginated-query API over the
// SOAP stack: compact acks, quiet batches, all-or-nothing semantics across
// the wire, and page/token round trips.

func TestBatchWriteEndToEnd(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	c := NewClient(url, testAlice)
	if _, err := c.DefineAttribute("run", AttrString, ""); err != nil {
		t.Fatal(err)
	}
	dt := "binary"
	results, err := c.BatchWrite(NewBatch().
		CreateFile(FileSpec{Name: "bw-1"}).
		CreateFile(FileSpec{Name: "bw-2"}).
		UpdateFile("bw-1", 0, FileUpdate{DataType: &dt}).
		SetAttribute(ObjectFile, "bw-2", Attribute{Name: "run", Value: String("S2")}).
		Annotate(ObjectFile, "bw-1", "batched note").
		DeleteFile("bw-2", 0).
		Ops())
	if err != nil {
		t.Fatal(err)
	}
	wantActions := []string{"createFile", "createFile", "updateFile", "setAttribute", "annotate", "deleteFile"}
	if len(results) != len(wantActions) {
		t.Fatalf("got %d results, want %d", len(results), len(wantActions))
	}
	for i, r := range results {
		if r.Action != wantActions[i] {
			t.Fatalf("result %d action = %q, want %q", i, r.Action, wantActions[i])
		}
	}
	// Acks are compact: action, id and version — no file echo over the wire.
	if results[0].ID == 0 || results[0].Version != 1 || results[0].File != nil {
		t.Fatalf("create ack = %+v", results[0])
	}
	f, err := c.GetFile("bw-1", 0)
	if err != nil || f.DataType != "binary" {
		t.Fatalf("bw-1 = %+v, %v", f, err)
	}
	if f.ID != results[0].ID {
		t.Fatalf("ack id %d != file id %d", results[0].ID, f.ID)
	}
	if _, err := c.GetFile("bw-2", 0); err == nil {
		t.Fatal("bw-2 should be deleted")
	}
}

func TestBatchWriteQuietEndToEnd(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	c := NewClient(url, testAlice)
	b := NewBatch()
	for i := 0; i < 25; i++ {
		b.CreateFile(FileSpec{Name: fmt.Sprintf("quiet-%03d", i)})
	}
	n, err := c.BatchWriteQuiet(b.Ops())
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Fatalf("quiet batch count = %d, want 25", n)
	}
	st, err := c.Stats()
	if err != nil || st.Files != 25 {
		t.Fatalf("stats = %+v, %v", st, err)
	}
	// Quiet batches keep the same all-or-nothing contract.
	if _, err := c.BatchWriteQuiet(NewBatch().
		CreateFile(FileSpec{Name: "quiet-ok"}).
		DeleteFile("no-such-file", 0).
		Ops()); err == nil {
		t.Fatal("quiet batch with bad op committed")
	}
	if _, err := c.GetFile("quiet-ok", 0); err == nil {
		t.Fatal("quiet-ok survived a failed quiet batch")
	}
}

func TestBatchWriteAtomicOverSOAP(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	c := NewClient(url, testAlice)
	_, err := c.BatchWrite(NewBatch().
		CreateFile(FileSpec{Name: "soap-atomic-1"}).
		CreateFile(FileSpec{Name: "soap-atomic-2"}).
		CreateFile(FileSpec{Name: "soap-atomic-1"}). // dup in-batch: version 2, fine
		DeleteFile("never-existed", 0).              // op 3 fails
		Ops())
	if err == nil {
		t.Fatal("batch with failing op committed")
	}
	if !strings.Contains(err.Error(), "batch op 3") {
		t.Fatalf("fault does not name failing op index: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != 0 {
		t.Fatalf("%d files survived a failed batch, want 0", st.Files)
	}
	for _, name := range []string{"soap-atomic-1", "soap-atomic-2"} {
		if _, err := c.GetFile(name, 0); err == nil {
			t.Fatalf("%s exists after failed batch", name)
		}
	}
}

func TestQueryPaginationRoundTrip(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	c := NewClient(url, testAlice)
	if _, err := c.DefineAttribute("group", AttrString, ""); err != nil {
		t.Fatal(err)
	}
	b := NewBatch()
	for i := 0; i < 25; i++ {
		b.CreateFile(FileSpec{Name: fmt.Sprintf("page-%03d", i),
			Attributes: []Attribute{{Name: "group", Value: String("g1")}}})
	}
	if _, err := c.BatchWriteQuiet(b.Ops()); err != nil {
		t.Fatal(err)
	}
	q := Query{Predicates: []Predicate{{Attribute: "group", Op: OpEq, Value: String("g1")}}}

	// Manual page walk: tokens must partition the result set exactly.
	var paged []string
	token := ""
	pages := 0
	for {
		names, next, err := c.RunQueryPage(q, 10, token)
		if err != nil {
			t.Fatal(err)
		}
		if len(names) > 10 {
			t.Fatalf("page of %d names exceeds page size 10", len(names))
		}
		paged = append(paged, names...)
		pages++
		if next == "" {
			break
		}
		token = next
	}
	if pages < 3 {
		t.Fatalf("25 results in %d pages of 10, want >= 3", pages)
	}
	all, err := c.RunQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paged)
	sort.Strings(all)
	if len(paged) != 25 || fmt.Sprint(paged) != fmt.Sprint(all) {
		t.Fatalf("paged walk = %d names, unpaginated = %d; sets differ", len(paged), len(all))
	}

	// The auto-paginating iterator sees the same set, and stops early on
	// a callback error.
	var streamed []string
	if err := c.QueryEachCtx(context.Background(), q, 7, func(name string) error {
		streamed = append(streamed, name)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != 25 {
		t.Fatalf("QueryEachCtx streamed %d names, want 25", len(streamed))
	}
	stopErr := fmt.Errorf("stop here")
	count := 0
	err = c.QueryEachCtx(context.Background(), q, 7, func(string) error {
		count++
		if count == 3 {
			return stopErr
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "stop here") || count != 3 {
		t.Fatalf("early stop: err = %v, count = %d", err, count)
	}
}

func TestCollectionContentsPaginationRoundTrip(t *testing.T) {
	_, url := startServer(t, ServerOptions{})
	c := NewClient(url, testAlice)
	if _, err := c.CreateCollection(CollectionSpec{Name: "top"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.CreateCollection(CollectionSpec{
			Name: fmt.Sprintf("sub-%d", i), Parent: "top"}); err != nil {
			t.Fatal(err)
		}
	}
	b := NewBatch()
	for i := 0; i < 8; i++ {
		b.CreateFile(FileSpec{Name: fmt.Sprintf("cc-%02d", i), Collection: "top"})
	}
	// Two extra versions of one name: the continuation token must keep
	// name+version boundaries apart, not just names.
	b.CreateFile(FileSpec{Name: "cc-03", Collection: "top"})
	b.CreateFile(FileSpec{Name: "cc-03", Collection: "top"})
	if _, err := c.BatchWriteQuiet(b.Ops()); err != nil {
		t.Fatal(err)
	}

	allFiles, allSubs, err := c.CollectionContents("top")
	if err != nil {
		t.Fatal(err)
	}
	if len(allFiles) != 10 || len(allSubs) != 3 {
		t.Fatalf("contents = %d files, %d subs; want 10, 3", len(allFiles), len(allSubs))
	}

	key := func(f File) string { return fmt.Sprintf("%s|v%d", f.Name, f.Version) }
	var pagedFiles, pagedSubs []string
	token := ""
	for {
		files, subs, next, err := c.CollectionContentsPage("top", 3, token)
		if err != nil {
			t.Fatal(err)
		}
		if len(files)+len(subs) > 3 {
			t.Fatalf("page holds %d members, page size 3", len(files)+len(subs))
		}
		for _, f := range files {
			pagedFiles = append(pagedFiles, key(f))
		}
		for _, s := range subs {
			pagedSubs = append(pagedSubs, s.Name)
		}
		if next == "" {
			break
		}
		token = next
	}
	var want []string
	for _, f := range allFiles {
		want = append(want, key(f))
	}
	sort.Strings(want)
	sort.Strings(pagedFiles)
	if fmt.Sprint(pagedFiles) != fmt.Sprint(want) {
		t.Fatalf("paged files %v != full listing %v", pagedFiles, want)
	}
	if len(pagedSubs) != 3 {
		t.Fatalf("paged subs = %v, want 3", pagedSubs)
	}
	seen := map[string]bool{}
	for _, k := range pagedFiles {
		if seen[k] {
			t.Fatalf("duplicate member %s across pages", k)
		}
		seen[k] = true
	}

	// Streaming helper walks the same membership.
	var streamed int
	if err := c.CollectionContentsEachCtx(context.Background(), "top", 4,
		func(File) error { streamed++; return nil },
		func(Collection) error { streamed++; return nil }); err != nil {
		t.Fatal(err)
	}
	if streamed != 13 {
		t.Fatalf("streamed %d members, want 13", streamed)
	}
}
